// Package finetune implements the paper's API chain-oriented finetuning
// (§II-C): preparing a dataset of (question, ground-truth API chain) pairs,
// training a chain-generation model with the node-matching-based loss, and
// the search-based prediction procedure with random rollouts.
//
// The paper's dataset came from logging students solving chemistry questions
// by manually invoking APIs. That source is unavailable, so GenerateDataset
// simulates the same pipeline: task templates describe what a user wants and
// which API chains solve it (often several equivalent chains); synthetic
// "action logs" are sampled from the templates with paraphrased questions,
// and examples are extracted from the logs exactly as the paper extracts
// chains from its logs.
package finetune

import (
	"math/rand"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

// Example is one finetuning pair: a natural-language question with the
// equivalent ground-truth chains that answer it.
type Example struct {
	// Question is the user's natural-language request.
	Question string
	// Kind is the graph kind the question is about.
	Kind graph.Kind
	// Truths are the equivalent ground-truth chains (≥ 1).
	Truths []chain.Chain
	// Task names the generating template, for stratified evaluation.
	Task string
}

// taskTemplate is one question family with paraphrases and its equivalent
// solution chains.
type taskTemplate struct {
	task        string
	kind        graph.Kind
	paraphrases []string
	truths      []chain.Chain
}

// templates covers the four demonstration scenarios plus common single-API
// questions. Multiple truths encode the paper's "several API chains may be
// equivalent" property.
func templates() []taskTemplate {
	return []taskTemplate{
		{
			task: "social_report", kind: graph.KindSocial,
			paraphrases: []string{
				"Write a brief report for G",
				"Summarize this social network for me",
				"Give me an overview report of the graph",
				"Describe the structure of this network in a short report",
				"Generate a report about my social graph",
			},
			truths: []chain.Chain{
				{chain.NewStep("graph.classify"), chain.NewStep("graph.stats"), chain.NewStep("community.detect"), chain.NewStep("report.compose")},
				{chain.NewStep("graph.classify"), chain.NewStep("community.detect"), chain.NewStep("connectivity.components"), chain.NewStep("report.compose")},
			},
		},
		{
			task: "molecule_report", kind: graph.KindMolecule,
			paraphrases: []string{
				"Write a brief report for this molecule",
				"Describe the chemical properties of G",
				"Give me a chemistry report for the uploaded molecule",
				"What are the properties of this compound",
				"Analyze this molecule and write a summary",
			},
			truths: []chain.Chain{
				{chain.NewStep("graph.classify"), chain.NewStep("molecule.formula"), chain.NewStep("molecule.toxicity"), chain.NewStep("report.compose")},
				{chain.NewStep("graph.classify"), chain.NewStep("molecule.formula"), chain.NewStep("molecule.solubility"), chain.NewStep("report.compose")},
			},
		},
		{
			task: "similarity", kind: graph.KindMolecule,
			paraphrases: []string{
				"What molecules are similar to G",
				"Find compounds that look like this molecule",
				"Search the database for similar molecules",
				"Which stored molecules resemble the uploaded graph",
				"Show me the two most similar molecules",
			},
			truths: []chain.Chain{
				{chain.NewStep("graph.classify"), chain.NewStep("similarity.search", "top", "2")},
			},
		},
		{
			task: "cleaning", kind: graph.KindKnowledge,
			paraphrases: []string{
				"Clean G",
				"Remove the noise from this knowledge graph",
				"Fix the incorrect edges and fill the missing ones",
				"Detect and repair errors in my knowledge graph",
				"Clean up the wrong triples in the graph",
			},
			truths: []chain.Chain{
				{chain.NewStep("graph.classify"), chain.NewStep("kg.detect_all"), chain.NewStep("graph.apply_edits")},
				{chain.NewStep("graph.classify"), chain.NewStep("kg.detect_incorrect"), chain.NewStep("graph.apply_edits")},
			},
		},
		{
			task: "communities", kind: graph.KindSocial,
			paraphrases: []string{
				"What communities are in this network",
				"Detect the clusters of the social graph",
				"Find the community structure",
				"How many groups does this network have",
			},
			truths: []chain.Chain{
				{chain.NewStep("community.detect")},
			},
		},
		{
			task: "influencers", kind: graph.KindSocial,
			paraphrases: []string{
				"Who are the most influential nodes",
				"Rank the important people in the network",
				"Which nodes are the biggest hubs",
				"Find the key influencers of this graph",
			},
			truths: []chain.Chain{
				{chain.NewStep("centrality.pagerank")},
				{chain.NewStep("centrality.degree")},
			},
		},
		{
			task: "connectivity", kind: graph.KindSocial,
			paraphrases: []string{
				"Is the network connected",
				"How many connected components are there",
				"Check the connectivity of the graph",
			},
			truths: []chain.Chain{
				{chain.NewStep("connectivity.components")},
			},
		},
		{
			task: "toxicity", kind: graph.KindMolecule,
			paraphrases: []string{
				"Is this molecule toxic",
				"Predict the toxicity of the compound",
				"How dangerous is this chemical",
			},
			truths: []chain.Chain{
				{chain.NewStep("molecule.toxicity")},
			},
		},
		{
			task: "solubility", kind: graph.KindMolecule,
			paraphrases: []string{
				"Is this molecule soluble in water",
				"Predict the solubility of the compound",
				"How well does this chemical dissolve",
			},
			truths: []chain.Chain{
				{chain.NewStep("molecule.solubility")},
			},
		},
		{
			task: "missing_edges", kind: graph.KindKnowledge,
			paraphrases: []string{
				"What edges are missing from the knowledge graph",
				"Infer new facts from the existing triples",
				"Complete the knowledge graph with inferred edges",
			},
			truths: []chain.Chain{
				{chain.NewStep("kg.detect_missing")},
			},
		},
	}
}

// GenerateDataset simulates n logged user sessions and extracts one Example
// per session. Sampling is uniform over templates and paraphrases; the same
// question can appear with different (equivalent) logged chains, exactly the
// ambiguity the node-matching loss is built for.
func GenerateDataset(n int, rng *rand.Rand) []Example {
	ts := templates()
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		t := ts[rng.Intn(len(ts))]
		q := t.paraphrases[rng.Intn(len(t.paraphrases))]
		out = append(out, Example{Question: q, Kind: t.kind, Truths: t.truths, Task: t.task})
	}
	return out
}

// SplitDataset partitions examples into train and test by paraphrase parity
// per task, so test questions are phrasings never seen in training. frac is
// the approximate test fraction.
func SplitDataset(examples []Example, frac float64, rng *rand.Rand) (train, test []Example) {
	for _, ex := range examples {
		if rng.Float64() < frac {
			test = append(test, ex)
		} else {
			train = append(train, ex)
		}
	}
	return train, test
}

// Tasks lists the distinct task names in the template catalog.
func Tasks() []string {
	ts := templates()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.task
	}
	return names
}
