package finetune

import (
	"math"
	"math/rand"

	"chatgraph/internal/chain"
	"chatgraph/internal/embed"
	"chatgraph/internal/graph"
)

// This file implements the paper's search-based prediction: chain generation
// iteratively extends a partial chain; in each iteration every candidate API
// a is scored by r random rollouts that complete Cp+{a} into a full chain,
// and the smallest node-matching loss against any ground-truth chain scores
// a (smaller is better). The best-scoring API is appended; generation stops
// when the end token wins or the length cap is hit.

// SearchConfig tunes the rollout search.
type SearchConfig struct {
	// Rollouts is r, the random completions per candidate (0 = greedy
	// scoring without rollouts, the ablation baseline).
	Rollouts int
	// Candidates bounds the candidate set S per iteration (0 → 6).
	Candidates int
	// MaxLen caps generated chains (0 → 8).
	MaxLen int
	// Alpha weighs the one-to-one regularizer in the loss (0 → 0.5).
	Alpha float64
}

func (c *SearchConfig) setDefaults() {
	if c.Candidates <= 0 {
		c.Candidates = 6
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 8
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
}

// SearchPredict generates a chain for the question using rollout search
// against the ground-truth chains, as done during finetuning. With
// cfg.Rollouts == 0 it degenerates to scoring each candidate by the loss of
// the partial chain alone (no lookahead) — the ablation baseline.
func SearchPredict(m *Model, question string, kind graph.Kind, truths []chain.Chain, cfg SearchConfig, rng *rand.Rand) chain.Chain {
	cfg.setDefaults()
	var partial chain.Chain
	for len(partial) < cfg.MaxLen {
		cands := m.TopCandidates(partial, question, kind, cfg.Candidates)
		if len(cands) == 0 {
			break
		}
		bestAPI, bestLoss := "", math.Inf(1)
		for _, api := range cands {
			extended := append(partial.Clone(), chain.Step{API: api})
			loss := m.rolloutScore(extended, question, kind, truths, cfg, rng)
			if loss < bestLoss {
				bestAPI, bestLoss = api, loss
			}
		}
		// Consider stopping: the loss of the partial chain as-is.
		stopLoss, _ := chain.MinLoss(partial, truths, cfg.Alpha)
		if len(partial) > 0 && stopLoss <= bestLoss {
			break
		}
		partial = append(partial, chain.Step{API: bestAPI})
	}
	return partial
}

// rolloutScore estimates how promising the prefix is: the minimum, over r
// random model-guided completions, of the smallest loss against any ground
// truth. r == 0 scores the prefix directly.
func (m *Model) rolloutScore(prefix chain.Chain, question string, kind graph.Kind, truths []chain.Chain, cfg SearchConfig, rng *rand.Rand) float64 {
	// Two completions are always considered besides the random rollouts:
	// the trivial one ("stop now") and the model-greedy one. They anchor
	// the estimate so that a lucky random completion of a bad prefix
	// cannot beat a good prefix whose rollouts happened to miss.
	best, _ := chain.MinLoss(prefix, truths, cfg.Alpha)
	if l, _ := chain.MinLoss(m.greedyComplete(prefix, question, kind, cfg.MaxLen), truths, cfg.Alpha); l < best {
		best = l
	}
	for i := 0; i < cfg.Rollouts; i++ {
		full := m.randomComplete(prefix, question, kind, cfg.MaxLen, rng)
		if l, _ := chain.MinLoss(full, truths, cfg.Alpha); l < best {
			best = l
		}
	}
	return best
}

// greedyComplete extends prefix with the model's highest-scoring successor
// until the end token wins or maxLen is hit.
func (m *Model) greedyComplete(prefix chain.Chain, question string, kind graph.Kind, maxLen int) chain.Chain {
	c := prefix.Clone()
	for len(c) < maxLen {
		cands := m.TopCandidates(c, question, kind, 1)
		if len(cands) == 0 {
			break
		}
		prev := startToken
		if len(c) > 0 {
			prev = c[len(c)-1].API
		}
		qTokens := embed.Tokenize(question)
		if len(c) > 0 && m.scoreEnd(prev) >= m.score(prev, cands[0], qTokens, kind) {
			break
		}
		c = append(c, chain.Step{API: cands[0]})
	}
	return c
}

// randomComplete extends prefix to a full chain by sampling successors from
// the model's top candidates until the end token is sampled or maxLen hit.
func (m *Model) randomComplete(prefix chain.Chain, question string, kind graph.Kind, maxLen int, rng *rand.Rand) chain.Chain {
	c := prefix.Clone()
	for len(c) < maxLen {
		// Sample among top-4 candidates plus a stop chance that grows with
		// length, approximating the model's end-token probability mass.
		if rng.Float64() < 0.15*float64(len(c)) {
			break
		}
		cands := m.TopCandidates(c, question, kind, 4)
		if len(cands) == 0 {
			break
		}
		c = append(c, chain.Step{API: cands[rng.Intn(len(cands))]})
	}
	return c
}

// TrainConfig tunes Train.
type TrainConfig struct {
	// Epochs of rollout-refinement after count initialization (0 → 2).
	Epochs int
	// Search configures the per-example rollout search during refinement.
	Search SearchConfig
	// Seed drives the training RNG.
	Seed int64
}

// Train fits a Model on examples: transition/affinity counts are initialized
// from every ground-truth chain, then each refinement epoch runs the
// search-based prediction on every example and reinforces the predicted
// chain weighted by exp(−loss) — low-loss predictions (which the rollout
// search finds more reliably with larger r) sharpen the model, high-loss
// ones barely move it.
func Train(vocab []string, examples []Example, cfg TrainConfig) *Model {
	if cfg.Epochs == 0 {
		cfg.Epochs = 2
	}
	m := NewModel(vocab)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, ex := range examples {
		for _, truth := range ex.Truths {
			m.Observe(ex.Question, ex.Kind, truth, 1)
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, ex := range examples {
			pred := SearchPredict(m, ex.Question, ex.Kind, ex.Truths, cfg.Search, rng)
			loss, _ := chain.MinLoss(pred, ex.Truths, cfg.Search.Alpha)
			if math.IsInf(loss, 1) {
				continue
			}
			m.Observe(ex.Question, ex.Kind, pred, math.Exp(-loss))
		}
	}
	return m
}

// EvalResult aggregates prediction quality over a test set (benchmark E7).
type EvalResult struct {
	Examples int
	// ExactMatch is the fraction whose decoded chain equals some truth
	// exactly (API sequence).
	ExactMatch float64
	// MeanLoss is the average node-matching loss against the closest truth.
	MeanLoss float64
	// MeanGED is the average edit distance to the closest truth.
	MeanGED float64
}

// Evaluate decodes every test question greedily and scores it against the
// ground truths.
func Evaluate(m *Model, test []Example, alpha float64) EvalResult {
	res := EvalResult{Examples: len(test)}
	if len(test) == 0 {
		return res
	}
	for _, ex := range test {
		pred := m.Decode(ex.Question, ex.Kind, 8)
		loss, idx := chain.MinLoss(pred, ex.Truths, alpha)
		res.MeanLoss += loss
		if idx >= 0 {
			res.MeanGED += chain.EditDistance(pred, ex.Truths[idx])
		}
		for _, truth := range ex.Truths {
			if sameAPIs(pred, truth) {
				res.ExactMatch++
				break
			}
		}
	}
	n := float64(len(test))
	res.ExactMatch /= n
	res.MeanLoss /= n
	res.MeanGED /= n
	return res
}

func sameAPIs(a, b chain.Chain) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].API != b[i].API {
			return false
		}
	}
	return true
}

// EvaluateByTask returns a per-task EvalResult breakdown, so experiments can
// see which question families the model handles and which it misses.
func EvaluateByTask(m *Model, test []Example, alpha float64) map[string]EvalResult {
	byTask := make(map[string][]Example)
	for _, ex := range test {
		byTask[ex.Task] = append(byTask[ex.Task], ex)
	}
	out := make(map[string]EvalResult, len(byTask))
	for task, exs := range byTask {
		out[task] = Evaluate(m, exs, alpha)
	}
	return out
}
