package finetune

import (
	"math/rand"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func vocab() []string { return apis.Default(nil).Names() }

func TestGenerateDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GenerateDataset(200, rng)
	if len(ds) != 200 {
		t.Fatalf("dataset size = %d", len(ds))
	}
	tasks := make(map[string]bool)
	for _, ex := range ds {
		if ex.Question == "" || len(ex.Truths) == 0 || ex.Task == "" {
			t.Fatalf("bad example %+v", ex)
		}
		for _, c := range ds[0].Truths {
			if len(c) == 0 {
				t.Fatal("empty truth chain")
			}
		}
		tasks[ex.Task] = true
	}
	if len(tasks) < 8 {
		t.Fatalf("only %d distinct tasks in 200 samples", len(tasks))
	}
}

func TestDatasetChainsValidAgainstRegistry(t *testing.T) {
	reg := apis.Default(nil)
	rng := rand.New(rand.NewSource(2))
	for _, ex := range GenerateDataset(100, rng) {
		for _, truth := range ex.Truths {
			if err := chain.Validate(truth, reg); err != nil {
				t.Fatalf("task %s truth %s invalid: %v", ex.Task, truth, err)
			}
		}
	}
}

func TestSplitDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := GenerateDataset(300, rng)
	train, test := SplitDataset(ds, 0.25, rng)
	if len(train)+len(test) != 300 {
		t.Fatalf("split lost examples: %d + %d", len(train), len(test))
	}
	if len(test) < 40 || len(test) > 120 {
		t.Fatalf("test fraction off: %d", len(test))
	}
}

func TestTasksNonEmpty(t *testing.T) {
	if len(Tasks()) < 8 {
		t.Fatalf("Tasks = %v", Tasks())
	}
}

func TestObserveAndDecodeRecoversChain(t *testing.T) {
	m := NewModel(vocab())
	truth := chain.Chain{chain.Step{API: "graph.classify"}, chain.Step{API: "similarity.search"}}
	for i := 0; i < 5; i++ {
		m.Observe("what molecules are similar to G", graph.KindMolecule, truth, 1)
	}
	got := m.Decode("what molecules are similar to G", graph.KindMolecule, 8)
	if !sameAPIs(got, truth) {
		t.Fatalf("Decode = %s, want %s", got, truth)
	}
}

func TestDecodeEmptyModelStillTerminates(t *testing.T) {
	m := NewModel(vocab())
	c := m.Decode("anything", graph.KindUnknown, 8)
	if len(c) > 8 {
		t.Fatalf("decode overflow: %d", len(c))
	}
}

func TestObserveIgnoresEmptyAndZeroWeight(t *testing.T) {
	m := NewModel(vocab())
	m.Observe("q", graph.KindSocial, nil, 1)
	m.Observe("q", graph.KindSocial, chain.Chain{chain.Step{API: "graph.stats"}}, 0)
	if len(m.trans) != 0 {
		t.Fatal("empty/zero-weight observation mutated model")
	}
}

func TestTopCandidatesRanked(t *testing.T) {
	m := NewModel(vocab())
	truth := chain.Chain{chain.Step{API: "community.detect"}}
	for i := 0; i < 10; i++ {
		m.Observe("find communities", graph.KindSocial, truth, 1)
	}
	cands := m.TopCandidates(nil, "find communities", graph.KindSocial, 3)
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0] != "community.detect" {
		t.Fatalf("top candidate = %s", cands[0])
	}
}

func TestSearchPredictConvergesToTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := GenerateDataset(300, rng)
	m := Train(vocab(), ds, TrainConfig{Epochs: 1, Search: SearchConfig{Rollouts: 4}, Seed: 5})
	truth := []chain.Chain{{chain.Step{API: "graph.classify"}, chain.Step{API: "kg.detect_all"}, chain.Step{API: "graph.apply_edits"}}}
	pred := SearchPredict(m, "Clean G", graph.KindKnowledge, truth, SearchConfig{Rollouts: 8}, rng)
	if loss, _ := chain.MinLoss(pred, truth, 0.5); loss > 1 {
		t.Fatalf("SearchPredict loss = %v for %s", loss, pred)
	}
}

func TestRolloutsImprovePrediction(t *testing.T) {
	// E7's core claim: rollout search scores candidates better than
	// no-lookahead scoring. Use a weak model so search quality matters.
	rng := rand.New(rand.NewSource(6))
	ds := GenerateDataset(60, rng)
	m := Train(vocab(), ds, TrainConfig{Epochs: 0, Seed: 7})
	var lossGreedy, lossRollout float64
	tests := GenerateDataset(40, rng)
	for _, ex := range tests {
		pg := SearchPredict(m, ex.Question, ex.Kind, ex.Truths, SearchConfig{Rollouts: 0}, rng)
		pr := SearchPredict(m, ex.Question, ex.Kind, ex.Truths, SearchConfig{Rollouts: 8}, rng)
		lg, _ := chain.MinLoss(pg, ex.Truths, 0.5)
		lr, _ := chain.MinLoss(pr, ex.Truths, 0.5)
		lossGreedy += lg
		lossRollout += lr
	}
	if lossRollout > lossGreedy+1e-9 {
		t.Fatalf("rollouts hurt: greedy %.3f vs rollout %.3f", lossGreedy, lossRollout)
	}
}

func TestTrainEvaluateEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := GenerateDataset(400, rng)
	train, test := SplitDataset(ds, 0.25, rng)
	m := Train(vocab(), train, TrainConfig{Epochs: 2, Search: SearchConfig{Rollouts: 4}, Seed: 9})
	res := Evaluate(m, test, 0.5)
	if res.Examples == 0 {
		t.Fatal("empty test set")
	}
	if res.ExactMatch < 0.5 {
		t.Fatalf("exact match = %.3f, want ≥ 0.5 (loss %.3f, ged %.3f)", res.ExactMatch, res.MeanLoss, res.MeanGED)
	}
	if res.MeanGED > 2 {
		t.Fatalf("mean GED = %.3f", res.MeanGED)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := NewModel(vocab())
	if res := Evaluate(m, nil, 0.5); res.Examples != 0 || res.ExactMatch != 0 {
		t.Fatalf("empty Evaluate = %+v", res)
	}
}

func TestTrainedBeatsUntrained(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := GenerateDataset(300, rng)
	train, test := SplitDataset(ds, 0.3, rng)
	trained := Train(vocab(), train, TrainConfig{Epochs: 1, Search: SearchConfig{Rollouts: 4}, Seed: 11})
	untrained := NewModel(vocab())
	rt := Evaluate(trained, test, 0.5)
	ru := Evaluate(untrained, test, 0.5)
	if rt.ExactMatch <= ru.ExactMatch {
		t.Fatalf("training did not help: trained %.3f vs untrained %.3f", rt.ExactMatch, ru.ExactMatch)
	}
}

func TestEvaluateByTask(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ds := GenerateDataset(300, rng)
	train, test := SplitDataset(ds, 0.3, rng)
	m := Train(vocab(), train, TrainConfig{Epochs: 1, Search: SearchConfig{Rollouts: 2}, Seed: 21})
	byTask := EvaluateByTask(m, test, 0.5)
	if len(byTask) < 5 {
		t.Fatalf("only %d tasks evaluated", len(byTask))
	}
	total := 0
	for task, res := range byTask {
		if res.Examples == 0 {
			t.Fatalf("task %s has no examples", task)
		}
		total += res.Examples
	}
	if total != len(test) {
		t.Fatalf("per-task examples %d != test size %d", total, len(test))
	}
}
