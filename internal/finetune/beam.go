package finetune

import (
	"sort"

	"chatgraph/internal/chain"
	"chatgraph/internal/embed"
	"chatgraph/internal/graph"
)

// Beam-search decoding: instead of committing to the single best next API at
// each position (Decode), keep the `width` highest-scoring partial chains
// and return the best-scoring completed one. Beam decoding trades latency
// for accuracy on questions where the first token is ambiguous; the
// BenchmarkDecodingStrategies ablation quantifies the trade.

type beamEntry struct {
	c     chain.Chain
	score float64
	done  bool
}

// DecodeBeam generates a chain with beam search of the given width
// (width ≤ 1 falls back to greedy Decode). maxLen ≤ 0 means 8.
func (m *Model) DecodeBeam(question string, kind graph.Kind, maxLen, width int) chain.Chain {
	if width <= 1 {
		return m.Decode(question, kind, maxLen)
	}
	if maxLen <= 0 {
		maxLen = 8
	}
	qTokens := embed.Tokenize(question)
	beams := []beamEntry{{}}
	for step := 0; step < maxLen; step++ {
		var next []beamEntry
		expanded := false
		for _, b := range beams {
			if b.done {
				next = append(next, b)
				continue
			}
			prev := startToken
			used := make(map[string]bool, len(b.c))
			for _, s := range b.c {
				used[s.API] = true
			}
			if len(b.c) > 0 {
				prev = b.c[len(b.c)-1].API
			}
			// Ending is one candidate continuation (only for non-empty
			// chains: every question needs at least one API).
			if len(b.c) > 0 {
				next = append(next, beamEntry{c: b.c, score: b.score + m.scoreEnd(prev), done: true})
			}
			for _, api := range m.vocab {
				if used[api] {
					continue
				}
				expanded = true
				nc := append(b.c.Clone(), chain.Step{API: api})
				next = append(next, beamEntry{c: nc, score: b.score + m.score(prev, api, qTokens, kind)})
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].score > next[j].score })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
		if !expanded {
			break
		}
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	// Prefer the best finished beam; fall back to the best overall.
	for _, b := range beams {
		if b.done && len(b.c) > 0 {
			return b.c
		}
	}
	for _, b := range beams {
		if len(b.c) > 0 {
			return b.c
		}
	}
	return nil
}

// EvaluateBeam mirrors Evaluate using beam decoding with the given width.
func EvaluateBeam(m *Model, test []Example, alpha float64, width int) EvalResult {
	res := EvalResult{Examples: len(test)}
	if len(test) == 0 {
		return res
	}
	for _, ex := range test {
		pred := m.DecodeBeam(ex.Question, ex.Kind, 8, width)
		loss, idx := chain.MinLoss(pred, ex.Truths, alpha)
		res.MeanLoss += loss
		if idx >= 0 {
			res.MeanGED += chain.EditDistance(pred, ex.Truths[idx])
		}
		for _, truth := range ex.Truths {
			if sameAPIs(pred, truth) {
				res.ExactMatch++
				break
			}
		}
	}
	n := float64(len(test))
	res.ExactMatch /= n
	res.MeanLoss /= n
	res.MeanGED /= n
	return res
}
