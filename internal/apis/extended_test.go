package apis

import (
	"math/rand"
	"strings"
	"testing"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func TestExtendedAPIsRegistered(t *testing.T) {
	r := reg()
	for _, name := range []string{
		"structure.kcore", "structure.cliques", "structure.assortativity",
		"path.weighted", "structure.center", "structure.coloring",
		"structure.spanning_tree", "molecule.substructure",
	} {
		if _, ok := r.Get(name); !ok {
			t.Fatalf("%s not registered", name)
		}
	}
}

func TestKCoreAPI(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(60, 3, rng)
	out, err := r.Invoke(chain.NewStep("structure.kcore"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "Degeneracy") {
		t.Fatalf("kcore = %v, %v", out, err)
	}
	cores, ok := out.Data.([]int)
	if !ok || len(cores) != 60 {
		t.Fatalf("Data = %T", out.Data)
	}
}

func TestCliquesAPI(t *testing.T) {
	r := reg()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode("v")
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j)) //nolint:errcheck
		}
	}
	out, err := r.Invoke(chain.NewStep("structure.cliques", "max", "10"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "largest has 4") {
		t.Fatalf("cliques = %v, %v", out, err)
	}
}

func TestAssortativityAPI(t *testing.T) {
	r := reg()
	g := graph.New()
	hub := g.AddNode("h")
	for i := 0; i < 8; i++ {
		g.AddEdge(hub, g.AddNode("l")) //nolint:errcheck
	}
	out, err := r.Invoke(chain.NewStep("structure.assortativity"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "disassortative") {
		t.Fatalf("assortativity = %v, %v", out, err)
	}
}

func TestWeightedPathAPI(t *testing.T) {
	r := reg()
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode("v")
	}
	g.AddEdgeLabeled(0, 1, "", 10) //nolint:errcheck
	g.AddEdgeLabeled(0, 2, "", 1)  //nolint:errcheck
	g.AddEdgeLabeled(2, 1, "", 1)  //nolint:errcheck
	out, err := r.Invoke(chain.NewStep("path.weighted", "from", "0", "to", "1"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "total 2.00") {
		t.Fatalf("weighted path = %v, %v", out, err)
	}
	if _, err := r.Invoke(chain.NewStep("path.weighted", "from", "0", "to", "9"), Input{Graph: g}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestCenterColoringSpanningTreeAPIs(t *testing.T) {
	r := reg()
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	out, err := r.Invoke(chain.NewStep("structure.center"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "Radius 2, diameter 4") {
		t.Fatalf("center = %v, %v", out, err)
	}
	out, err = r.Invoke(chain.NewStep("structure.coloring"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "2 color") {
		t.Fatalf("coloring = %v, %v", out, err)
	}
	out, err = r.Invoke(chain.NewStep("structure.spanning_tree"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "4 edge") {
		t.Fatalf("mst = %v, %v", out, err)
	}
}

func TestFunctionalGroups(t *testing.T) {
	// Ethanol-ish: C-C-O.
	g := graph.New()
	c1 := g.AddNode("C")
	c2 := g.AddNode("C")
	o := g.AddNode("O")
	g.AddEdge(c1, c2) //nolint:errcheck
	g.AddEdge(c2, o)  //nolint:errcheck
	counts := FunctionalGroups(g)
	if counts["hydroxyl-like (C-O)"] == 0 {
		t.Fatalf("C-O not detected: %v", counts)
	}
	if counts["amine-like (C-N)"] != 0 {
		t.Fatalf("phantom amine: %v", counts)
	}
	// Benzene ring detection.
	ring := graph.New()
	for i := 0; i < 6; i++ {
		ring.AddNode("C")
	}
	for i := 0; i < 6; i++ {
		ring.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6)) //nolint:errcheck
	}
	if FunctionalGroups(ring)["carbon ring (C6)"] == 0 {
		t.Fatal("C6 ring not detected")
	}
}

func TestSubstructureAPI(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(2))
	g := graph.Molecule(20, rng)
	out, err := r.Invoke(chain.NewStep("molecule.substructure"), Input{Graph: g})
	if err != nil || out.Text == "" {
		t.Fatalf("substructure = %v, %v", out, err)
	}
	empty := graph.New()
	empty.AddNode("C")
	out, err = r.Invoke(chain.NewStep("molecule.substructure"), Input{Graph: empty})
	if err != nil || !strings.Contains(out.Text, "No recognized") {
		t.Fatalf("empty substructure = %v, %v", out, err)
	}
}
