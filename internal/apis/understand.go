package apis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"chatgraph/internal/graph"
)

// registerUnderstand adds the social/structural analysis APIs used by the
// chat-based graph understanding scenario (Fig. 4).
func registerUnderstand(r *Registry, _ *Env) {
	r.mustRegister(API{
		Name:        "community.detect",
		Memoizable:  true,
		Description: "Detect communities and clusters in a social network using label propagation and report their sizes and modularity.",
		Category:    "understand",
		Kinds:       []graph.Kind{graph.KindSocial},
		Params: []Param{
			{Name: "max_iters", Description: "maximum propagation rounds", Kind: "int", Default: "20"},
		},
		Fn: func(in Input) (Output, error) {
			comms := LabelPropagation(in.Graph, in.IntArg("max_iters", 20))
			q := Modularity(in.Graph, comms)
			sizes := communitySizes(comms)
			text := fmt.Sprintf("Found %d communities (modularity %.3f). Sizes: %s.",
				len(sizes), q, joinInts(sizes, 8))
			return Output{Text: text, Data: comms}, nil
		},
	})
	r.mustRegister(API{
		Name:        "connectivity.components",
		Memoizable:  true,
		Description: "Compute the connected components of the graph and report their count and sizes.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			comps := in.Graph.ConnectedComponents()
			sizes := make([]int, len(comps))
			for i, c := range comps {
				sizes[i] = len(c)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
			return Output{
				Text: fmt.Sprintf("The graph has %d connected component(s). Sizes: %s.", len(comps), joinInts(sizes, 8)),
				Data: comps,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "connectivity.bridges",
		Memoizable:  true,
		Description: "Find bridge edges and articulation points whose removal disconnects the network.",
		Category:    "understand",
		Kinds:       []graph.Kind{graph.KindSocial},
		Fn: func(in Input) (Output, error) {
			bridges, arts := BridgesAndArticulation(in.Graph)
			return Output{
				Text: fmt.Sprintf("Found %d bridge edge(s) and %d articulation point(s).", len(bridges), len(arts)),
				Data: map[string]any{"bridges": bridges, "articulation": arts},
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "centrality.degree",
		Memoizable:  true,
		Description: "Rank the most connected nodes by degree centrality to find hubs.",
		Category:    "understand",
		Params: []Param{
			{Name: "top", Description: "how many nodes to report", Kind: "int", Default: "5"},
		},
		Fn: func(in Input) (Output, error) {
			scores := make([]float64, in.Graph.NumNodes())
			for _, n := range in.Graph.Nodes() {
				scores[n.ID] = float64(in.Graph.Degree(n.ID))
			}
			return rankOutput(in.Graph, scores, in.IntArg("top", 5), "degree"), nil
		},
	})
	r.mustRegister(API{
		Name:        "centrality.pagerank",
		Memoizable:  true,
		Description: "Rank influential nodes using PageRank centrality.",
		Category:    "understand",
		Params: []Param{
			{Name: "top", Description: "how many nodes to report", Kind: "int", Default: "5"},
			{Name: "damping", Description: "damping factor", Kind: "float", Default: "0.85"},
		},
		Fn: func(in Input) (Output, error) {
			scores := PageRank(in.Graph, 0.85, 50)
			return rankOutput(in.Graph, scores, in.IntArg("top", 5), "pagerank"), nil
		},
	})
	r.mustRegister(API{
		Name:        "centrality.betweenness",
		Memoizable:  true,
		Description: "Rank broker nodes that lie on many shortest paths using betweenness centrality.",
		Category:    "understand",
		Kinds:       []graph.Kind{graph.KindSocial},
		Params: []Param{
			{Name: "top", Description: "how many nodes to report", Kind: "int", Default: "5"},
		},
		Fn: func(in Input) (Output, error) {
			scores := Betweenness(in.Graph)
			return rankOutput(in.Graph, scores, in.IntArg("top", 5), "betweenness"), nil
		},
	})
	r.mustRegister(API{
		Name:        "centrality.closeness",
		Memoizable:  true,
		Description: "Rank central nodes that can reach everyone quickly using closeness centrality.",
		Category:    "understand",
		Params: []Param{
			{Name: "top", Description: "how many nodes to report", Kind: "int", Default: "5"},
		},
		Fn: func(in Input) (Output, error) {
			scores := Closeness(in.Graph)
			return rankOutput(in.Graph, scores, in.IntArg("top", 5), "closeness"), nil
		},
	})
	r.mustRegister(API{
		Name:        "path.shortest",
		Memoizable:  true,
		Description: "Compute the shortest path between two nodes of the graph.",
		Category:    "understand",
		Params: []Param{
			{Name: "from", Description: "source node id", Required: true, Kind: "int"},
			{Name: "to", Description: "target node id", Required: true, Kind: "int"},
		},
		Fn: func(in Input) (Output, error) {
			from := graph.NodeID(in.IntArg("from", 0))
			to := graph.NodeID(in.IntArg("to", 0))
			n := graph.NodeID(in.Graph.NumNodes())
			if from >= n || to >= n || from < 0 || to < 0 {
				return Output{}, fmt.Errorf("path.shortest: node out of range (have %d nodes)", n)
			}
			path := ShortestPath(in.Graph, from, to)
			if path == nil {
				return Output{Text: fmt.Sprintf("No path exists between node %d and node %d.", from, to), Data: []graph.NodeID(nil)}, nil
			}
			parts := make([]string, len(path))
			for i, id := range path {
				parts[i] = fmt.Sprintf("%d", id)
			}
			return Output{
				Text: fmt.Sprintf("Shortest path (%d hops): %s.", len(path)-1, strings.Join(parts, " -> ")),
				Data: path,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.density",
		Memoizable:  true,
		Description: "Measure how dense or sparse the graph is and summarize its degree distribution.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			s := graph.ComputeStats(in.Graph)
			return Output{
				Text: fmt.Sprintf("Density %.4f; degrees min %d / mean %.2f / max %d; %s.",
					s.Density, s.MinDegree, s.MeanDegree, s.MaxDegree, s.AssortativityHint),
				Data: s,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.triangles",
		Memoizable:  true,
		Description: "Count triangles and measure the clustering coefficient of the network.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			s := graph.ComputeStats(in.Graph)
			return Output{
				Text: fmt.Sprintf("The graph contains %d triangles; average clustering coefficient %.3f.", s.Triangles, s.ClusteringCoeff),
				Data: map[string]any{"triangles": s.Triangles, "clustering": s.ClusteringCoeff},
			}, nil
		},
	})
}

// rankOutput formats a top-k node ranking.
func rankOutput(g *graph.Graph, scores []float64, top int, metric string) Output {
	type ranked struct {
		ID    graph.NodeID
		Score float64
	}
	rs := make([]ranked, len(scores))
	for i, s := range scores {
		rs[i] = ranked{graph.NodeID(i), s}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ID < rs[j].ID
	})
	if top <= 0 {
		top = 5
	}
	if top > len(rs) {
		top = len(rs)
	}
	parts := make([]string, top)
	for i := 0; i < top; i++ {
		label := g.Node(rs[i].ID).Label
		if label == "" {
			label = fmt.Sprintf("v%d", rs[i].ID)
		}
		parts[i] = fmt.Sprintf("%s (%.3f)", label, rs[i].Score)
	}
	return Output{
		Text: fmt.Sprintf("Top %d nodes by %s: %s.", top, metric, strings.Join(parts, ", ")),
		Data: scores,
	}
}

func communitySizes(comms []int) []int {
	counts := make(map[int]int)
	for _, c := range comms {
		counts[c]++
	}
	sizes := make([]int, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

func joinInts(xs []int, max int) string {
	parts := make([]string, 0, max+1)
	for i, x := range xs {
		if i >= max {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, fmt.Sprintf("%d", x))
	}
	return strings.Join(parts, ", ")
}

// LabelPropagation assigns each node a community by iteratively adopting the
// most common label among its neighbors. Deterministic: nodes update in ID
// order and ties break toward the smallest label.
func LabelPropagation(g *graph.Graph, maxIters int) []int {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if maxIters <= 0 {
		maxIters = 20
	}
	c := g.Freeze()
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			counts := make(map[int]int)
			for _, nb := range c.OutNeighbors(graph.NodeID(u)) {
				counts[labels[nb]]++
			}
			if len(counts) == 0 {
				continue
			}
			best, bestCount := labels[u], counts[labels[u]]
			for l, c := range counts {
				if c > bestCount || c == bestCount && l < best {
					best, bestCount = l, c
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Renumber to dense community IDs in first-appearance order.
	remap := make(map[int]int)
	for i, l := range labels {
		if _, ok := remap[l]; !ok {
			remap[l] = len(remap)
		}
		labels[i] = remap[l]
	}
	return labels
}

// Modularity computes the Newman modularity Q of a community assignment on
// an undirected view of g.
func Modularity(g *graph.Graph, comms []int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	deg := make([]float64, g.NumNodes())
	for _, e := range g.Edges() {
		deg[e.From]++
		deg[e.To]++
	}
	var q float64
	for _, e := range g.Edges() {
		if comms[e.From] == comms[e.To] {
			q += 1
		}
	}
	q /= m
	sumDeg := make(map[int]float64)
	for i, c := range comms {
		sumDeg[c] += deg[i]
	}
	for _, d := range sumDeg {
		q -= (d / (2 * m)) * (d / (2 * m))
	}
	return q
}

// PageRank computes PageRank scores with the given damping over iters
// power iterations, treating the graph as undirected when it is undirected.
func PageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	c := g.Freeze()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		var danglingMass float64
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			outs := c.OutNeighbors(graph.NodeID(u))
			if len(outs) == 0 {
				danglingMass += pr[u]
				continue
			}
			share := damping * pr[u] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		if danglingMass > 0 {
			spread := damping * danglingMass / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		delta := 0.0
		for i := range pr {
			delta += math.Abs(next[i] - pr[i])
		}
		pr, next = next, pr
		if delta < 1e-9 {
			break
		}
	}
	return pr
}

// Betweenness computes exact unweighted betweenness centrality with
// Brandes' algorithm on the undirected view of g.
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	c := g.Freeze()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		// Single-source shortest paths with path counting.
		var stack []int
		preds := make([][]int, n)
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range c.OutNeighbors(graph.NodeID(v)) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, int(w))
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		delta := make([]float64, n)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	// Undirected: each pair counted twice.
	if !g.Directed() {
		for i := range bc {
			bc[i] /= 2
		}
	}
	return bc
}

// Closeness computes closeness centrality: (reachable−1) / Σ distances,
// scaled by the reachable fraction (the Wasserman–Faust formula), so
// disconnected graphs still rank sensibly.
func Closeness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		dist := g.ShortestPathLengths(graph.NodeID(u))
		sum, reach := 0, 0
		for _, d := range dist {
			if d > 0 {
				sum += d
				reach++
			}
		}
		if sum > 0 {
			out[u] = float64(reach) / float64(sum) * float64(reach) / float64(n-1)
		}
	}
	return out
}

// ShortestPath returns the node sequence of an unweighted shortest path from
// src to dst, or nil when unreachable.
func ShortestPath(g *graph.Graph, src, dst graph.NodeID) []graph.NodeID {
	if src == dst {
		return []graph.NodeID{src}
	}
	parent := make([]graph.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	c := g.Freeze()
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.OutNeighbors(u) {
			if parent[v] >= 0 {
				continue
			}
			parent[v] = u
			if v == dst {
				var rev []graph.NodeID
				for cur := dst; cur != src; cur = parent[cur] {
					rev = append(rev, cur)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// BridgesAndArticulation finds bridge edges and articulation points with
// Tarjan's low-link DFS over the undirected view of g.
func BridgesAndArticulation(g *graph.Graph) ([][2]graph.NodeID, []graph.NodeID) {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges [][2]graph.NodeID
	isArt := make([]bool, n)
	c := g.Freeze()
	timer := 0
	var dfs func(u, parent int)
	dfs = func(u, parent int) {
		disc[u] = timer
		low[u] = timer
		timer++
		children := 0
		parentSkipped := false
		for _, vID := range c.OutNeighbors(graph.NodeID(u)) {
			v := int(vID)
			if v == parent && !parentSkipped {
				parentSkipped = true // skip the tree edge once; parallel edges count
				continue
			}
			if disc[v] >= 0 {
				if disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			children++
			dfs(v, u)
			if low[v] < low[u] {
				low[u] = low[v]
			}
			if low[v] > disc[u] {
				bridges = append(bridges, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
			}
			if parent >= 0 && low[v] >= disc[u] {
				isArt[u] = true
			}
		}
		if parent < 0 && children > 1 {
			isArt[u] = true
		}
	}
	for u := 0; u < n; u++ {
		if disc[u] < 0 {
			dfs(u, -1)
		}
	}
	var arts []graph.NodeID
	for i, a := range isArt {
		if a {
			arts = append(arts, graph.NodeID(i))
		}
	}
	return bridges, arts
}
