package apis

import (
	"fmt"
	"sort"
	"strings"

	"chatgraph/internal/graph"
)

// Descriptor-based molecular property models. The paper invokes proprietary
// chemistry APIs (toxicity, solubility); here each property is a calibrated
// function of standard structural descriptors (atom counts, rings,
// heteroatom fractions) so the molecule code path is exercised end to end
// with chemically sensible monotonic behaviour (e.g. more halogens → more
// toxic, more oxygens/nitrogens → more soluble).

// atomicWeights covers the atoms the molecule generator emits.
var atomicWeights = map[string]float64{
	"H": 1.008, "C": 12.011, "N": 14.007, "O": 15.999, "S": 32.06,
	"P": 30.974, "F": 18.998, "Cl": 35.45, "Br": 79.904, "I": 126.9,
	"B": 10.81, "Si": 28.085,
}

// MoleculeDescriptors summarizes a molecule's structure for the property
// models.
type MoleculeDescriptors struct {
	Atoms        int
	Bonds        int
	Rings        int
	Weight       float64
	HeteroFrac   float64 // fraction of non-carbon heavy atoms
	HalogenCount int
	NOCount      int // nitrogen + oxygen atoms (H-bond capable)
	Formula      string
}

// element returns the element symbol of a node (attr first, label second).
func element(n graph.Node) string {
	if e := n.Attrs["element"]; e != "" {
		return e
	}
	return n.Label
}

// ComputeDescriptors derives the descriptor set from a molecule graph.
func ComputeDescriptors(g *graph.Graph) MoleculeDescriptors {
	d := MoleculeDescriptors{Atoms: g.NumNodes(), Bonds: g.NumEdges()}
	comps := g.ConnectedComponents()
	// Circuit rank = E − V + C: number of independent rings.
	d.Rings = d.Bonds - d.Atoms + len(comps)
	if d.Rings < 0 {
		d.Rings = 0
	}
	counts := make(map[string]int)
	for _, n := range g.Nodes() {
		el := element(n)
		counts[el]++
		if w, ok := atomicWeights[el]; ok {
			d.Weight += w
		} else {
			d.Weight += 12 // unknown atoms count as carbon-ish
		}
		switch el {
		case "F", "Cl", "Br", "I":
			d.HalogenCount++
		case "N", "O":
			d.NOCount++
		}
	}
	if d.Atoms > 0 {
		d.HeteroFrac = float64(d.Atoms-counts["C"]) / float64(d.Atoms)
	}
	d.Formula = hillFormula(counts)
	return d
}

// hillFormula renders counts in Hill order: C, H, then alphabetical.
func hillFormula(counts map[string]int) string {
	var keys []string
	for k := range counts {
		if k != "C" && k != "H" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	ordered := make([]string, 0, len(counts))
	if counts["C"] > 0 {
		ordered = append(ordered, "C")
	}
	if counts["H"] > 0 {
		ordered = append(ordered, "H")
	}
	ordered = append(ordered, keys...)
	var b strings.Builder
	for _, k := range ordered {
		b.WriteString(k)
		if counts[k] > 1 {
			fmt.Fprintf(&b, "%d", counts[k])
		}
	}
	return b.String()
}

// Toxicity scores [0,1]: halogens, rings, and molecular weight increase it.
func Toxicity(d MoleculeDescriptors) float64 {
	score := 0.08*float64(d.HalogenCount) + 0.05*float64(d.Rings) + d.Weight/2000 + 0.2*d.HeteroFrac
	return clamp01(score)
}

// Solubility scores [0,1]: H-bonding heteroatoms help, mass and rings hurt.
func Solubility(d MoleculeDescriptors) float64 {
	if d.Atoms == 0 {
		return 0
	}
	score := 0.5 + 0.6*float64(d.NOCount)/float64(d.Atoms) - d.Weight/1500 - 0.06*float64(d.Rings) - 0.1*float64(d.HalogenCount)
	return clamp01(score)
}

// LogP estimates lipophilicity: carbons and halogens raise it, N/O lower it.
func LogP(d MoleculeDescriptors) float64 {
	carbons := float64(d.Atoms) * (1 - d.HeteroFrac)
	return 0.4*carbons + 0.6*float64(d.HalogenCount) - 0.7*float64(d.NOCount) - 0.5
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func riskBand(score float64) string {
	switch {
	case score < 0.33:
		return "low"
	case score < 0.66:
		return "moderate"
	default:
		return "high"
	}
}

// registerMolecule adds the chemistry APIs the molecule-understanding path
// invokes.
func registerMolecule(r *Registry, _ *Env) {
	r.mustRegister(API{
		Name:        "molecule.formula",
		Memoizable:  true,
		Description: "Compute the molecular formula and molecular weight of a chemical molecule.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			d := ComputeDescriptors(in.Graph)
			return Output{
				Text: fmt.Sprintf("Formula %s, molecular weight %.1f g/mol.", d.Formula, d.Weight),
				Data: d,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "molecule.toxicity",
		Memoizable:  true,
		Description: "Predict the toxicity of a chemical molecule from its structure.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			d := ComputeDescriptors(in.Graph)
			tox := Toxicity(d)
			return Output{
				Text: fmt.Sprintf("Predicted toxicity %.2f (%s risk): %d halogen(s), %d ring(s), weight %.0f.",
					tox, riskBand(tox), d.HalogenCount, d.Rings, d.Weight),
				Data: tox,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "molecule.solubility",
		Memoizable:  true,
		Description: "Predict the aqueous solubility of a chemical molecule.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			d := ComputeDescriptors(in.Graph)
			sol := Solubility(d)
			return Output{
				Text: fmt.Sprintf("Predicted solubility %.2f (%s): %d H-bonding heteroatom(s) over %d atoms.",
					sol, riskBand(sol), d.NOCount, d.Atoms),
				Data: sol,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "molecule.logp",
		Memoizable:  true,
		Description: "Estimate the lipophilicity logP of a chemical molecule.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			d := ComputeDescriptors(in.Graph)
			return Output{
				Text: fmt.Sprintf("Estimated logP %.2f.", LogP(d)),
				Data: LogP(d),
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "molecule.rings",
		Memoizable:  true,
		Description: "Count the rings and ring systems in a chemical molecule.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			d := ComputeDescriptors(in.Graph)
			return Output{
				Text: fmt.Sprintf("The molecule has %d independent ring(s).", d.Rings),
				Data: d.Rings,
			}, nil
		},
	})
}
