// Package apis defines the graph-analysis API registry ChatGraph retrieves
// from and executes against. Each API carries natural-language metadata (the
// text the retrieval module embeds) and an executable implementation over
// the internal/graph substrate. The registry covers the four demonstration
// scenarios: social understanding, molecule chemistry, similarity
// comparison, and knowledge-graph cleaning.
package apis

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
	"chatgraph/internal/kg"
	"chatgraph/internal/moldb"
)

// Output is the result of one API invocation. Text is always set and is what
// chat transcripts show; Data carries the machine-readable payload piped to
// the next chain step.
type Output struct {
	Text string
	Data any
}

// Input is what an API implementation receives.
type Input struct {
	// Graph is the user-uploaded graph the chain operates on. APIs that
	// edit graphs mutate this instance.
	Graph *graph.Graph
	// Prev is the previous step's Output (zero for the first step).
	Prev Output
	// Args are the invocation arguments from the chain step.
	Args map[string]string
	// Env exposes shared resources (molecule DB, KG detector).
	Env *Env
}

// Arg returns the named argument or def when absent.
func (in Input) Arg(name, def string) string {
	if v, ok := in.Args[name]; ok && v != "" {
		return v
	}
	return def
}

// IntArg returns the named argument parsed as int, or def when absent or
// malformed arguments were already rejected by validation.
func (in Input) IntArg(name string, def int) int {
	v, ok := in.Args[name]
	if !ok || v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Env carries the shared substrate resources APIs may need.
type Env struct {
	// MolDB is the molecule database for similarity search (scenario 2).
	MolDB *moldb.DB
	// Detector finds knowledge-graph defects (scenario 3).
	Detector *kg.Detector
	// Cache memoizes invocations of Memoizable APIs per graph version, so a
	// session asking follow-up questions about an unmutated graph never
	// re-runs an identical analysis. Nil disables memoization.
	Cache *InvokeCache
}

// Param documents one API argument.
type Param struct {
	Name        string
	Description string
	Required    bool
	Default     string
	// Kind is "int", "float", "string", or "enum".
	Kind string
	// Enum lists legal values when Kind == "enum".
	Enum []string
}

// API is one registered graph-analysis operation.
type API struct {
	// Name is the dotted registry key, e.g. "community.detect".
	Name string
	// Description is the sentence the retrieval module embeds.
	Description string
	// Category groups APIs: "understand", "molecule", "compare", "clean",
	// "util".
	Category string
	// Kinds lists which graph kinds the API applies to (empty = any).
	Kinds []graph.Kind
	// Params documents accepted arguments.
	Params []Param
	// Memoizable marks APIs whose Output is a pure function of (graph
	// content, args): they read only the graph and their arguments — never
	// Prev, never mutable Env state — and do not mutate the graph. Only
	// these are eligible for the Env invocation cache.
	Memoizable bool
	// Mutates marks APIs that edit the graph they receive. The executor
	// uses it to clone interned (shared) graphs before running a chain that
	// contains one, so graph edits stay private to the requesting session.
	// Mutates and Memoizable are mutually exclusive.
	Mutates bool
	// Fn executes the API.
	Fn func(Input) (Output, error)
}

// Registry is a concurrency-safe API catalog; it implements chain.Validator.
type Registry struct {
	mu   sync.RWMutex
	apis map[string]API
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{apis: make(map[string]API)}
}

// Register adds an API; re-registering an existing name is an error.
func (r *Registry) Register(a API) error {
	if a.Name == "" || a.Fn == nil {
		return fmt.Errorf("apis: API must have a name and an implementation")
	}
	if a.Memoizable && a.Mutates {
		return fmt.Errorf("apis: %q cannot be both Memoizable and Mutates", a.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.apis[a.Name]; dup {
		return fmt.Errorf("apis: %q already registered", a.Name)
	}
	r.apis[a.Name] = a
	return nil
}

// mustRegister panics on registration conflicts — used only for the built-in
// catalog, where a duplicate is a programming error.
func (r *Registry) mustRegister(a API) {
	if err := r.Register(a); err != nil {
		panic(err)
	}
}

// Get returns the named API.
func (r *Registry) Get(name string) (API, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.apis[name]
	return a, ok
}

// Len reports how many APIs are registered.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.apis)
}

// All returns every API sorted by name.
func (r *Registry) All() []API {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]API, 0, len(r.apis))
	for _, a := range r.apis {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns every API name sorted.
func (r *Registry) Names() []string {
	all := r.All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// ByCategory returns the APIs in one category, sorted by name.
func (r *Registry) ByCategory(cat string) []API {
	var out []API
	for _, a := range r.All() {
		if a.Category == cat {
			out = append(out, a)
		}
	}
	return out
}

// ValidateStep implements chain.Validator: the API must exist, required
// params must be present, and enum/int params must parse.
func (r *Registry) ValidateStep(s chain.Step) error {
	a, ok := r.Get(s.API)
	if !ok {
		return fmt.Errorf("unknown API %q", s.API)
	}
	known := make(map[string]Param, len(a.Params))
	for _, p := range a.Params {
		known[p.Name] = p
		v, present := s.Args[p.Name]
		if !present {
			if p.Required {
				return fmt.Errorf("missing required argument %q", p.Name)
			}
			continue
		}
		switch p.Kind {
		case "int":
			if _, err := strconv.Atoi(v); err != nil {
				return fmt.Errorf("argument %q must be an integer, got %q", p.Name, v)
			}
		case "float":
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("argument %q must be a number, got %q", p.Name, v)
			}
		case "enum":
			ok := false
			for _, e := range p.Enum {
				if e == v {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("argument %q must be one of %v, got %q", p.Name, p.Enum, v)
			}
		}
	}
	for arg := range s.Args {
		if _, ok := known[arg]; !ok {
			return fmt.Errorf("unexpected argument %q", arg)
		}
	}
	return nil
}

// Invoke validates and executes one step against in. Memoizable APIs are
// served from (and stored into) the Env invocation cache keyed by the
// graph's content hash, so repeating a step on the same graph content —
// whether the same instance, a re-upload in another session, or a fresh
// parse of identical JSON — short-circuits without re-running the
// implementation. A result is only cached when the graph version is
// unchanged after the call — a safety net against an API marked Memoizable
// that mutates anyway.
func (r *Registry) Invoke(s chain.Step, in Input) (Output, error) {
	if err := r.ValidateStep(s); err != nil {
		return Output{}, err
	}
	a, _ := r.Get(s.API)
	if in.Args == nil {
		in.Args = s.Args
	}
	if a.Memoizable && in.Graph != nil && in.Env != nil && in.Env.Cache != nil {
		key := cacheKey{
			hash:    in.Graph.ContentHash(),
			exact:   in.Graph.ExactHash(),
			version: in.Graph.Version(),
			api:     a.Name,
			args:    canonicalArgs(in.Args),
		}
		if out, ok := in.Env.Cache.get(key); ok {
			return out, nil
		}
		out, err := a.Fn(in)
		if err == nil && in.Graph.Version() == key.version {
			in.Env.Cache.put(key, out)
		}
		return out, err
	}
	return a.Fn(in)
}

// ChainMutates reports whether any step of c names an API flagged Mutates.
// Unknown APIs are treated as mutating — validation will reject the chain
// anyway, and a conservative answer never shares what it should not.
func (r *Registry) ChainMutates(c chain.Chain) bool {
	for _, s := range c {
		a, ok := r.Get(s.API)
		if !ok || a.Mutates {
			return true
		}
	}
	return false
}

// Default builds the full built-in catalog wired to env. A nil env gets
// empty substrate resources (similarity search will report an empty DB).
func Default(env *Env) *Registry {
	if env == nil {
		env = &Env{}
	}
	if env.MolDB == nil {
		env.MolDB = moldb.New(3)
	}
	if env.Detector == nil {
		env.Detector = kg.NewDetector()
	}
	if env.Cache == nil {
		env.Cache = NewInvokeCache(DefaultInvokeCacheSize)
	}
	r := NewRegistry()
	registerUtil(r, env)
	registerUnderstand(r, env)
	registerMolecule(r, env)
	registerCompare(r, env)
	registerClean(r, env)
	registerExtended(r, env)
	return r
}
