package apis

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

// countingRegistry returns a registry with one memoizable and one
// non-memoizable API, each counting its executions.
func countingRegistry(t *testing.T) (*Registry, *int, *int) {
	t.Helper()
	r := NewRegistry()
	memoRuns, plainRuns := new(int), new(int)
	if err := r.Register(API{
		Name:        "test.memo",
		Description: "memoizable counting API",
		Category:    "util",
		Memoizable:  true,
		Params:      []Param{{Name: "k", Kind: "int", Default: "1"}},
		Fn: func(in Input) (Output, error) {
			*memoRuns++
			return Output{Text: fmt.Sprintf("memo k=%s v=%d", in.Arg("k", "1"), in.Graph.Version())}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(API{
		Name:        "test.plain",
		Description: "non-memoizable counting API",
		Category:    "util",
		Fn: func(in Input) (Output, error) {
			*plainRuns++
			return Output{Text: "plain"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return r, memoRuns, plainRuns
}

func TestInvokeMemoization(t *testing.T) {
	r, memoRuns, plainRuns := countingRegistry(t)
	env := &Env{Cache: NewInvokeCache(8)}
	g := graph.BarabasiAlbert(20, 2, rand.New(rand.NewSource(1)))
	step := chain.Step{API: "test.memo"}
	in := Input{Graph: g, Env: env}

	out1, err := r.Invoke(step, in)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := r.Invoke(step, in)
	if err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 1 {
		t.Fatalf("memoizable API ran %d times, want 1", *memoRuns)
	}
	if out1.Text != out2.Text {
		t.Fatalf("cached output %q != original %q", out2.Text, out1.Text)
	}
	if hits, misses := env.Cache.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}

	// Different args → different key.
	if _, err := r.Invoke(chain.Step{API: "test.memo", Args: map[string]string{"k": "2"}}, in); err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 2 {
		t.Fatalf("distinct args reused a cache entry (%d runs)", *memoRuns)
	}

	// Mutation bumps the version → cache miss and recompute.
	g.SetNodeLabel(0, "renamed")
	if _, err := r.Invoke(step, in); err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 3 {
		t.Fatalf("mutated graph served a stale entry (%d runs)", *memoRuns)
	}

	// Non-memoizable APIs always run.
	plainStep := chain.Step{API: "test.plain"}
	for i := 0; i < 3; i++ {
		if _, err := r.Invoke(plainStep, in); err != nil {
			t.Fatal(err)
		}
	}
	if *plainRuns != 3 {
		t.Fatalf("non-memoizable API ran %d times, want 3", *plainRuns)
	}

	// Nil cache disables memoization without breaking invocation.
	noCache := Input{Graph: g, Env: &Env{}}
	if _, err := r.Invoke(step, noCache); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(step, noCache); err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 5 {
		t.Fatalf("nil cache still memoized (%d runs)", *memoRuns)
	}
}

// TestInvokeCacheMutatingAPIUncached: an API flagged Memoizable that
// nevertheless mutates the graph must not be stored (the version changed
// under it).
func TestInvokeCacheMutatingAPIUncached(t *testing.T) {
	r := NewRegistry()
	runs := 0
	if err := r.Register(API{
		Name:        "test.liar",
		Description: "claims memoizable but mutates",
		Category:    "util",
		Memoizable:  true,
		Fn: func(in Input) (Output, error) {
			runs++
			in.Graph.AddNode("sneaky")
			return Output{Text: "mutated"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	env := &Env{Cache: NewInvokeCache(8)}
	g := graph.New()
	g.AddNode("seed")
	in := Input{Graph: g, Env: env}
	for i := 0; i < 3; i++ {
		if _, err := r.Invoke(chain.Step{API: "test.liar"}, in); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 3 {
		t.Fatalf("mutating API was cached (%d runs, want 3)", runs)
	}
	if env.Cache.Len() != 0 {
		t.Fatalf("cache holds %d entries for a mutating API", env.Cache.Len())
	}
}

func TestInvokeCacheLRUEviction(t *testing.T) {
	c := NewInvokeCache(2)
	k := func(api string) cacheKey { return cacheKey{api: api} }
	c.put(k("a"), Output{Text: "a"})
	c.put(k("b"), Output{Text: "b"})
	if _, ok := c.get(k("a")); !ok {
		t.Fatal("a evicted prematurely")
	}
	c.put(k("c"), Output{Text: "c"}) // evicts b (least recently used)
	if _, ok := c.get(k("b")); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	for _, want := range []string{"a", "c"} {
		if out, ok := c.get(k(want)); !ok || out.Text != want {
			t.Fatalf("entry %q lost after eviction", want)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("Evictions() = %d, want 1", ev)
	}
}

func TestCanonicalArgs(t *testing.T) {
	if canonicalArgs(nil) != "" || canonicalArgs(map[string]string{}) != "" {
		t.Fatal("empty args must canonicalize to empty string")
	}
	a := canonicalArgs(map[string]string{"to": "3", "from": "1"})
	b := canonicalArgs(map[string]string{"from": "1", "to": "3"})
	if a != b {
		t.Fatalf("map order leaked into the key: %q vs %q", a, b)
	}
	if a == canonicalArgs(map[string]string{"from": "1", "to": "4"}) {
		t.Fatal("different args collided")
	}
}

// TestDefaultEnvHasCache: the built-in catalog wires a bounded cache in.
func TestDefaultEnvHasCache(t *testing.T) {
	env := &Env{}
	Default(env)
	if env.Cache == nil {
		t.Fatal("Default left Env.Cache nil")
	}
}

// TestSharedGraphInvokeRace hammers concurrent memoizable invocations over
// one shared, unmutated graph (run with -race): the frozen CSR, the stats
// memo, and the invocation cache are all shared state here.
func TestSharedGraphInvokeRace(t *testing.T) {
	env := &Env{}
	r := Default(env)
	g := graph.BarabasiAlbert(120, 3, rand.New(rand.NewSource(4)))
	steps := []chain.Step{
		{API: "graph.stats"},
		{API: "graph.classify"},
		{API: "structure.kcore"},
		{API: "structure.center"},
		{API: "centrality.pagerank"},
		{API: "structure.triangles"},
		{API: "path.shortest", Args: map[string]string{"from": "0", "to": "50"}},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s := steps[(w+i)%len(steps)]
				if _, err := r.Invoke(s, Input{Graph: g, Env: env, Args: s.Args}); err != nil {
					t.Errorf("%s: %v", s.API, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestInvokeCacheCrossInstanceHit is the E12c fix in miniature: two
// *different* graph instances parsed from the same JSON must share one
// cache entry — the scenario the old pointer-scoped key could never hit
// (every upload is a fresh pointer).
func TestInvokeCacheCrossInstanceHit(t *testing.T) {
	r, memoRuns, _ := countingRegistry(t)
	env := &Env{Cache: NewInvokeCache(8)}
	data, err := json.Marshal(graph.BarabasiAlbert(20, 2, rand.New(rand.NewSource(9))))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := graph.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("test wants two distinct instances")
	}
	step := chain.Step{API: "test.memo"}
	out1, err := r.Invoke(step, Input{Graph: g1, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := r.Invoke(step, Input{Graph: g2, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 1 {
		t.Fatalf("identical content across instances recomputed (%d runs, want 1)", *memoRuns)
	}
	if out1.Text != out2.Text {
		t.Fatalf("cross-instance outputs differ: %q vs %q", out1.Text, out2.Text)
	}
	if hits, misses := env.Cache.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestInvokeCacheNoCanonicalCollisionSharing: graphs that collide under
// the canonical ContentHash (1-WL equivalent 6-cycle vs two triangles)
// must not share cache entries — the exact-hash key component keeps a
// canonical coincidence from serving one graph's answers for another.
func TestInvokeCacheNoCanonicalCollisionSharing(t *testing.T) {
	r, memoRuns, _ := countingRegistry(t)
	env := &Env{Cache: NewInvokeCache(8)}
	mk := func(edges [][2]int) *graph.Graph {
		g := graph.New()
		for i := 0; i < 6; i++ {
			g.AddNode("C")
		}
		for _, e := range edges {
			if err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	cycle := mk([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	triangles := mk([][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if cycle.ContentHash() != triangles.ContentHash() {
		t.Fatal("fixture assumption broken: WL twins no longer collide canonically")
	}
	step := chain.Step{API: "test.memo"}
	if _, err := r.Invoke(step, Input{Graph: cycle, Env: env}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(step, Input{Graph: triangles, Env: env}); err != nil {
		t.Fatal(err)
	}
	if *memoRuns != 2 {
		t.Fatalf("canonically colliding graphs shared a cache entry (%d runs, want 2)", *memoRuns)
	}
}

// TestInvokeCacheContentAddressed: entries for an old content survive the
// mutation of the graph that created them (they are still correct answers
// for that content) and keep serving any fresh upload presenting that
// content — identity is the content, not the pointer.
func TestInvokeCacheContentAddressed(t *testing.T) {
	r, memoRuns, _ := countingRegistry(t)
	env := &Env{Cache: NewInvokeCache(16)}
	data, err := json.Marshal(graph.BarabasiAlbert(10, 2, rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	// Go through ParseJSON like a real upload, so the fresh re-parse below
	// lands on the same deterministic version and the keys line up.
	g, err := graph.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Graph: g, Env: env}
	for _, k := range []string{"1", "2", "3"} {
		if _, err := r.Invoke(chain.Step{API: "test.memo", Args: map[string]string{"k": k}}, in); err != nil {
			t.Fatal(err)
		}
	}
	if env.Cache.Len() != 3 {
		t.Fatalf("Len = %d, want 3", env.Cache.Len())
	}
	g.SetNodeLabel(0, "renamed")
	if _, err := r.Invoke(chain.Step{API: "test.memo"}, in); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (old-content entries stay valid)", env.Cache.Len())
	}
	// A fresh parse of the original JSON presents the old content; the
	// old entries must serve it even though their creator has moved on.
	fresh, err := graph.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore := *memoRuns
	if _, err := r.Invoke(chain.Step{API: "test.memo", Args: map[string]string{"k": "2"}}, Input{Graph: fresh, Env: env}); err != nil {
		t.Fatal(err)
	}
	if *memoRuns != runsBefore {
		t.Fatalf("old-content entry not served to a fresh instance (%d runs, want %d)", *memoRuns, runsBefore)
	}
}

// TestCanonicalArgsSeparatorInjection: values containing the old separator
// bytes must not let two different maps collide (length prefixes).
func TestCanonicalArgsSeparatorInjection(t *testing.T) {
	a := canonicalArgs(map[string]string{"a": "b\x00c=d"})
	b := canonicalArgs(map[string]string{"a": "b", "c": "d"})
	if a == b {
		t.Fatalf("NUL-embedded value collided with a two-key map: %q", a)
	}
	c := canonicalArgs(map[string]string{"a": "1;2:x"})
	d := canonicalArgs(map[string]string{"a": "1", "2:x": ""})
	if c == d {
		t.Fatalf("separator-embedded value collided: %q", c)
	}
}
