package apis

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func reg() *Registry { return Default(nil) }

func pathGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	return g
}

func TestDefaultRegistryPopulated(t *testing.T) {
	r := reg()
	if r.Len() < 25 {
		t.Fatalf("registry has only %d APIs", r.Len())
	}
	for _, cat := range []string{"understand", "molecule", "compare", "clean", "util"} {
		if len(r.ByCategory(cat)) == 0 {
			t.Fatalf("category %q empty", cat)
		}
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
	for _, a := range r.All() {
		if a.Description == "" {
			t.Fatalf("%s missing description", a.Name)
		}
	}
}

func TestRegisterRejectsBadAndDup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(API{}); err == nil {
		t.Fatal("empty API accepted")
	}
	ok := API{Name: "x", Fn: func(Input) (Output, error) { return Output{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestValidateStep(t *testing.T) {
	r := reg()
	cases := []struct {
		step   chain.Step
		wantOK bool
	}{
		{chain.NewStep("graph.stats"), true},
		{chain.NewStep("nope.api"), false},
		{chain.NewStep("path.shortest", "from", "0", "to", "1"), true},
		{chain.NewStep("path.shortest", "from", "0"), false},            // missing required
		{chain.NewStep("path.shortest", "from", "x", "to", "1"), false}, // bad int
		{chain.NewStep("report.compose", "style", "brief"), true},       // enum ok
		{chain.NewStep("report.compose", "style", "epic"), false},       // enum bad
		{chain.NewStep("graph.stats", "bogus", "1"), false},             // unexpected arg
		{chain.NewStep("centrality.pagerank", "damping", "0.9"), true},  // float ok
		{chain.NewStep("centrality.pagerank", "damping", "hot"), false}, // float bad
	}
	for _, c := range cases {
		err := r.ValidateStep(c.step)
		if c.wantOK && err != nil {
			t.Errorf("ValidateStep(%s) = %v, want ok", c.step, err)
		}
		if !c.wantOK && err == nil {
			t.Errorf("ValidateStep(%s) succeeded, want error", c.step)
		}
	}
}

func TestInvokeRunsAndValidates(t *testing.T) {
	r := reg()
	g := pathGraph(4)
	out, err := r.Invoke(chain.NewStep("graph.stats"), Input{Graph: g})
	if err != nil || out.Text == "" {
		t.Fatalf("Invoke = %v, %v", out, err)
	}
	if _, err := r.Invoke(chain.NewStep("nope"), Input{Graph: g}); err == nil {
		t.Fatal("invalid step invoked")
	}
}

func TestLabelPropagationFindsPlantedCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.PlantedCommunities(3, 15, 0.7, 0.01, rng)
	comms := LabelPropagation(g, 30)
	// Communities should roughly match the planted partition: count pairs
	// in the same planted block that share a detected label.
	agree, total := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		for j := i + 1; j < g.NumNodes(); j++ {
			same := g.Node(graph.NodeID(i)).Attrs["community"] == g.Node(graph.NodeID(j)).Attrs["community"]
			if !same {
				continue
			}
			total++
			if comms[i] == comms[j] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("planted-pair agreement = %.2f", frac)
	}
	q := Modularity(g, comms)
	if q < 0.3 {
		t.Fatalf("modularity = %.3f", q)
	}
}

func TestModularityEdgeCases(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	if q := Modularity(g, []int{0}); q != 0 {
		t.Fatalf("edgeless modularity = %v", q)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(80, 2, rng)
	pr := PageRank(g, 0.85, 60)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank sum = %v", sum)
	}
	// The highest-degree node should be (near) top ranked.
	bestDeg, bestPR := 0, 0
	for i := range pr {
		if g.Degree(graph.NodeID(i)) > g.Degree(graph.NodeID(bestDeg)) {
			bestDeg = i
		}
		if pr[i] > pr[bestPR] {
			bestPR = i
		}
	}
	if g.Degree(graph.NodeID(bestPR)) < g.Degree(graph.NodeID(bestDeg))/2 {
		t.Fatalf("top PR node %d has degree %d, hub degree %d", bestPR,
			g.Degree(graph.NodeID(bestPR)), g.Degree(graph.NodeID(bestDeg)))
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Directed graph with a sink: mass must not leak.
	g := graph.NewDirected()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdgeLabeled(a, b, "", 1) //nolint:errcheck
	pr := PageRank(g, 0.85, 100)
	if math.Abs(pr[0]+pr[1]-1) > 1e-6 {
		t.Fatalf("dangling pagerank sum = %v", pr[0]+pr[1])
	}
	if pr[1] <= pr[0] {
		t.Fatalf("sink should outrank source: %v", pr)
	}
}

func TestBetweennessPathCenter(t *testing.T) {
	g := pathGraph(5)
	bc := Betweenness(g)
	// Center of a 5-path lies on all 2·(2·2)=... exactly: bc = [0,3,4,3,0].
	want := []float64{0, 3, 4, 3, 0}
	for i, w := range want {
		if math.Abs(bc[i]-w) > 1e-9 {
			t.Fatalf("betweenness = %v, want %v", bc, want)
		}
	}
}

func TestClosenessCenterHighest(t *testing.T) {
	g := pathGraph(5)
	cl := Closeness(g)
	for i := range cl {
		if i != 2 && cl[i] > cl[2] {
			t.Fatalf("closeness center not maximal: %v", cl)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := pathGraph(5)
	p := ShortestPath(g, 0, 4)
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Fatalf("path = %v", p)
	}
	if p := ShortestPath(g, 2, 2); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
	g2 := graph.New()
	g2.AddNode("a")
	g2.AddNode("b")
	if p := ShortestPath(g2, 0, 1); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
}

func TestBridgesAndArticulation(t *testing.T) {
	// Two triangles joined by a bridge 2-3.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1]) //nolint:errcheck
	}
	bridges, arts := BridgesAndArticulation(g)
	if len(bridges) != 1 {
		t.Fatalf("bridges = %v", bridges)
	}
	b := bridges[0]
	if !(b[0] == 2 && b[1] == 3 || b[0] == 3 && b[1] == 2) {
		t.Fatalf("bridge = %v, want 2-3", b)
	}
	if len(arts) != 2 {
		t.Fatalf("articulation points = %v, want [2 3]", arts)
	}
}

func TestUnderstandAPIsRun(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(2))
	g := graph.PlantedCommunities(2, 10, 0.6, 0.05, rng)
	for _, name := range []string{
		"community.detect", "connectivity.components", "connectivity.bridges",
		"centrality.degree", "centrality.pagerank", "centrality.betweenness",
		"centrality.closeness", "structure.density", "structure.triangles",
	} {
		a, ok := r.Get(name)
		if !ok {
			t.Fatalf("API %s missing", name)
		}
		out, err := a.Fn(Input{Graph: g})
		if err != nil || out.Text == "" {
			t.Fatalf("%s: %v, %v", name, out, err)
		}
	}
}

func TestPathShortestAPIBounds(t *testing.T) {
	r := reg()
	g := pathGraph(3)
	if _, err := r.Invoke(chain.NewStep("path.shortest", "from", "0", "to", "99"), Input{Graph: g}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	out, err := r.Invoke(chain.NewStep("path.shortest", "from", "0", "to", "2"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "2 hops") {
		t.Fatalf("path.shortest = %v, %v", out, err)
	}
}

func TestMoleculeDescriptors(t *testing.T) {
	// Benzene-like ring of 6 carbons: 6 atoms, 6 bonds, 1 ring, weight ~72.
	g := graph.New()
	for i := 0; i < 6; i++ {
		id := g.AddNode("C")
		g.SetNodeAttr(id, "element", "C")
	}
	for i := 0; i < 6; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6)) //nolint:errcheck
	}
	d := ComputeDescriptors(g)
	if d.Rings != 1 {
		t.Fatalf("rings = %d", d.Rings)
	}
	if math.Abs(d.Weight-6*12.011) > 0.01 {
		t.Fatalf("weight = %v", d.Weight)
	}
	if d.Formula != "C6" {
		t.Fatalf("formula = %q", d.Formula)
	}
	if d.HeteroFrac != 0 || d.NOCount != 0 || d.HalogenCount != 0 {
		t.Fatalf("descriptors = %+v", d)
	}
}

func TestHillFormulaOrder(t *testing.T) {
	got := hillFormula(map[string]int{"O": 1, "C": 2, "H": 6, "N": 1})
	if got != "C2H6NO" {
		t.Fatalf("hillFormula = %q", got)
	}
}

func TestPropertyModelsMonotonic(t *testing.T) {
	base := MoleculeDescriptors{Atoms: 10, Bonds: 10, Weight: 120}
	halogenated := base
	halogenated.HalogenCount = 3
	if Toxicity(halogenated) <= Toxicity(base) {
		t.Fatal("halogens should raise toxicity")
	}
	soluble := base
	soluble.NOCount = 4
	if Solubility(soluble) <= Solubility(base) {
		t.Fatal("N/O should raise solubility")
	}
	if LogP(soluble) >= LogP(base) {
		t.Fatal("N/O should lower logP")
	}
	if Solubility(MoleculeDescriptors{}) != 0 {
		t.Fatal("empty molecule solubility")
	}
}

func TestMoleculeAPIsRun(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(3))
	g := graph.Molecule(15, rng)
	for _, name := range []string{"molecule.formula", "molecule.toxicity", "molecule.solubility", "molecule.logp", "molecule.rings"} {
		out, err := r.Invoke(chain.NewStep(name), Input{Graph: g})
		if err != nil || out.Text == "" {
			t.Fatalf("%s: %v, %v", name, out, err)
		}
	}
}

func TestSimilaritySearchScenario(t *testing.T) {
	env := &Env{}
	r := Default(env)
	rng := rand.New(rand.NewSource(4))
	// Empty DB answers gracefully.
	out, err := r.Invoke(chain.NewStep("similarity.search"), Input{Graph: graph.Molecule(10, rng)})
	if err != nil || !strings.Contains(out.Text, "empty") {
		t.Fatalf("empty DB: %v, %v", out, err)
	}
	for i := 0; i < 20; i++ {
		env.MolDB.Add("mol", graph.Molecule(12, rng))
	}
	q := graph.Molecule(12, rng)
	env.MolDB.Add("twin", q.Clone())
	out, err = r.Invoke(chain.NewStep("similarity.search", "top", "2"), Input{Graph: q})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "twin") {
		t.Fatalf("twin not in top-2: %s", out.Text)
	}
}

func TestSimilarityStoreAndKernel(t *testing.T) {
	env := &Env{}
	r := Default(env)
	rng := rand.New(rand.NewSource(5))
	g := graph.Molecule(10, rng)
	out, err := r.Invoke(chain.NewStep("similarity.store", "name", "query"), Input{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := out.Data.(int)
	if !ok {
		t.Fatalf("store Data = %T", out.Data)
	}
	out, err = r.Invoke(chain.NewStep("similarity.kernel", "id", "0"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "1.000") {
		t.Fatalf("kernel vs self = %v, %v (id %d)", out, err, id)
	}
	if _, err := r.Invoke(chain.NewStep("similarity.kernel", "id", "99"), Input{Graph: g}); err == nil {
		t.Fatal("bad id accepted")
	}
	out, err = r.Invoke(chain.NewStep("compare.stats", "id", "0"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "query") {
		t.Fatalf("compare.stats = %v, %v", out, err)
	}
}

func TestCleaningPipeline(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(6))
	g := graph.KnowledgeGraph(30, 60, rng)
	// Corrupt, then run detect → apply as the chain would.
	g.AddEdgeLabeled(0, 1, "nonsense_rel", 1) //nolint:errcheck
	det, err := r.Invoke(chain.NewStep("kg.detect_incorrect"), Input{Graph: g})
	if err != nil || !strings.Contains(det.Text, "1 incorrect") {
		t.Fatalf("detect = %v, %v", det, err)
	}
	before := g.NumEdges()
	ap, err := r.Invoke(chain.NewStep("graph.apply_edits"), Input{Graph: g, Prev: det})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before-1 {
		t.Fatalf("apply did not remove the edge: %s", ap.Text)
	}
	// apply_edits without a detection output fails cleanly.
	if _, err := r.Invoke(chain.NewStep("graph.apply_edits"), Input{Graph: g}); err == nil {
		t.Fatal("apply_edits accepted missing Prev")
	}
}

func TestDetectMissingAPI(t *testing.T) {
	r := reg()
	g := graph.NewDirected()
	a := g.AddNodeAttrs("a", map[string]string{"type": "person"})
	b := g.AddNodeAttrs("b", map[string]string{"type": "person"})
	g.AddEdgeLabeled(a, b, "spouse_of", 1) //nolint:errcheck
	out, err := r.Invoke(chain.NewStep("kg.detect_missing"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "missing") {
		t.Fatalf("detect_missing = %v, %v", out, err)
	}
	clean, err := r.Invoke(chain.NewStep("kg.detect_all"), Input{Graph: g})
	if err != nil || clean.Text == "" {
		t.Fatalf("detect_all = %v, %v", clean, err)
	}
}

func TestGraphEditAPIs(t *testing.T) {
	r := reg()
	g := pathGraph(3)
	if _, err := r.Invoke(chain.NewStep("graph.add_edge", "from", "0", "to", "2"), Input{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("edge not added")
	}
	if _, err := r.Invoke(chain.NewStep("graph.remove_edge", "from", "0", "to", "2"), Input{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("edge not removed")
	}
	if _, err := r.Invoke(chain.NewStep("graph.remove_edge", "from", "0", "to", "2"), Input{Graph: g}); err == nil {
		t.Fatal("removing missing edge succeeded")
	}
	if _, err := r.Invoke(chain.NewStep("graph.relabel_node", "node", "1", "label", "x"), Input{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if g.Node(1).Label != "x" {
		t.Fatal("node not relabeled")
	}
	if _, err := r.Invoke(chain.NewStep("graph.relabel_node", "node", "99", "label", "x"), Input{Graph: g}); err == nil {
		t.Fatal("out-of-range relabel succeeded")
	}
}

func TestUtilAPIs(t *testing.T) {
	r := reg()
	rng := rand.New(rand.NewSource(7))
	g := graph.Molecule(10, rng)
	out, err := r.Invoke(chain.NewStep("graph.classify"), Input{Graph: g})
	if err != nil || !strings.Contains(out.Text, "molecule") {
		t.Fatalf("classify = %v, %v", out, err)
	}
	out, err = r.Invoke(chain.NewStep("report.compose", "style", "detailed"), Input{
		Graph: g,
		Prev:  Output{Text: "toxicity 0.4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "Report for") || !strings.Contains(out.Text, "toxicity 0.4") {
		t.Fatalf("report = %s", out.Text)
	}
	if !strings.Contains(out.Text, "Degree extremes") {
		t.Fatalf("detailed style missing extras: %s", out.Text)
	}
	out, err = r.Invoke(chain.NewStep("graph.sample_neighborhood", "node", "0", "hops", "1"), Input{Graph: g})
	if err != nil || out.Text == "" {
		t.Fatalf("sample = %v, %v", out, err)
	}
	if _, err := r.Invoke(chain.NewStep("graph.sample_neighborhood", "node", "999"), Input{Graph: g}); err == nil {
		t.Fatal("out-of-range neighborhood succeeded")
	}
}

func TestInputArgHelpers(t *testing.T) {
	in := Input{Args: map[string]string{"a": "5", "b": "", "c": "xyz"}}
	if in.IntArg("a", 1) != 5 || in.IntArg("b", 2) != 2 || in.IntArg("c", 3) != 3 || in.IntArg("missing", 4) != 4 {
		t.Fatal("IntArg defaults wrong")
	}
	if in.Arg("a", "d") != "5" || in.Arg("b", "d") != "d" || in.Arg("missing", "d") != "d" {
		t.Fatal("Arg defaults wrong")
	}
}
