package apis

import (
	"fmt"
	"sort"
	"strings"

	"chatgraph/internal/graph"
)

// registerExtended adds the second wave of analysis APIs: cohesion (k-core,
// cliques), mixing (assortativity), distances (weighted paths, center),
// coloring, spanning trees, and molecule substructure search. Registered
// from Default alongside the scenario APIs.
func registerExtended(r *Registry, _ *Env) {
	r.mustRegister(API{
		Name:        "structure.kcore",
		Memoizable:  true,
		Description: "Compute the k-core decomposition of the network to find its most cohesive subgroups.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			core := graph.CoreNumbers(in.Graph)
			degeneracy := 0
			hist := make(map[int]int)
			for _, c := range core {
				hist[c]++
				if c > degeneracy {
					degeneracy = c
				}
			}
			return Output{
				Text: fmt.Sprintf("Degeneracy %d; the innermost %d-core contains %d node(s).", degeneracy, degeneracy, hist[degeneracy]),
				Data: core,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.cliques",
		Memoizable:  true,
		Description: "Enumerate the maximal cliques of the network, the tightly knit groups where everyone knows everyone.",
		Category:    "understand",
		Params: []Param{
			{Name: "max", Description: "stop after this many cliques", Kind: "int", Default: "1000"},
		},
		Fn: func(in Input) (Output, error) {
			cliques := graph.MaximalCliques(in.Graph, in.IntArg("max", 1000))
			largest := 0
			for _, c := range cliques {
				if len(c) > largest {
					largest = len(c)
				}
			}
			return Output{
				Text: fmt.Sprintf("Found %d maximal clique(s); the largest has %d members.", len(cliques), largest),
				Data: cliques,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.assortativity",
		Memoizable:  true,
		Description: "Measure degree assortativity: whether hubs connect to hubs or to peripheral nodes.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			a := graph.Assortativity(in.Graph)
			tendency := "neutral mixing"
			switch {
			case a > 0.1:
				tendency = "assortative: hubs attach to hubs"
			case a < -0.1:
				tendency = "disassortative: hubs attach to the periphery"
			}
			return Output{
				Text: fmt.Sprintf("Degree assortativity %.3f (%s).", a, tendency),
				Data: a,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "path.weighted",
		Memoizable:  true,
		Description: "Compute the minimum weight route between two nodes using the edge weights.",
		Category:    "understand",
		Params: []Param{
			{Name: "from", Description: "source node id", Required: true, Kind: "int"},
			{Name: "to", Description: "target node id", Required: true, Kind: "int"},
		},
		Fn: func(in Input) (Output, error) {
			from := graph.NodeID(in.IntArg("from", -1))
			to := graph.NodeID(in.IntArg("to", -1))
			n := graph.NodeID(in.Graph.NumNodes())
			if from < 0 || to < 0 || from >= n || to >= n {
				return Output{}, fmt.Errorf("path.weighted: node out of range (have %d nodes)", n)
			}
			path, w := graph.WeightedShortestPath(in.Graph, from, to)
			if path == nil {
				return Output{Text: fmt.Sprintf("No route exists between node %d and node %d.", from, to), Data: path}, nil
			}
			parts := make([]string, len(path))
			for i, id := range path {
				parts[i] = fmt.Sprintf("%d", id)
			}
			return Output{
				Text: fmt.Sprintf("Minimum-weight route (total %.2f): %s.", w, strings.Join(parts, " -> ")),
				Data: path,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.center",
		Memoizable:  true,
		Description: "Find the center of the graph: the nodes with the smallest eccentricity, plus the radius and diameter.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			_, radius, diameter := graph.Eccentricities(in.Graph)
			center := graph.Center(in.Graph)
			return Output{
				Text: fmt.Sprintf("Radius %d, diameter %d; %d node(s) form the center.", radius, diameter, len(center)),
				Data: center,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.coloring",
		Memoizable:  true,
		Description: "Color the graph so adjacent nodes differ, reporting how many colors the greedy heuristic needs.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			colors, k := graph.GreedyColoring(in.Graph)
			return Output{
				Text: fmt.Sprintf("Greedy coloring uses %d color(s).", k),
				Data: colors,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "structure.spanning_tree",
		Memoizable:  true,
		Description: "Compute a minimum weight spanning tree of the graph and its total weight.",
		Category:    "understand",
		Fn: func(in Input) (Output, error) {
			edges, total := graph.MinimumSpanningForest(in.Graph)
			return Output{
				Text: fmt.Sprintf("Minimum spanning forest has %d edge(s) with total weight %.2f.", len(edges), total),
				Data: edges,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "molecule.substructure",
		Memoizable:  true,
		Description: "Search the molecule for functional group substructures like hydroxyl, amine, and halide motifs.",
		Category:    "molecule",
		Kinds:       []graph.Kind{graph.KindMolecule},
		Fn: func(in Input) (Output, error) {
			counts := FunctionalGroups(in.Graph)
			if len(counts) == 0 {
				return Output{Text: "No recognized functional groups found.", Data: counts}, nil
			}
			keys := make([]string, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s×%d", k, counts[k])
			}
			return Output{
				Text: fmt.Sprintf("Functional groups: %s.", strings.Join(parts, ", ")),
				Data: counts,
			}, nil
		},
	})
}

// functionalGroupPatterns are the small labeled motifs substructure search
// looks for. Patterns are expressed as tiny graphs and matched with the
// exact subgraph-isomorphism engine.
func functionalGroupPatterns() map[string]*graph.Graph {
	mk := func(labels []string, edges [][2]int) *graph.Graph {
		g := graph.New()
		for _, l := range labels {
			g.AddNode(l)
		}
		for _, e := range edges {
			g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])) //nolint:errcheck
		}
		return g
	}
	return map[string]*graph.Graph{
		"hydroxyl-like (C-O)":  mk([]string{"C", "O"}, [][2]int{{0, 1}}),
		"amine-like (C-N)":     mk([]string{"C", "N"}, [][2]int{{0, 1}}),
		"thioether-like (C-S)": mk([]string{"C", "S"}, [][2]int{{0, 1}}),
		"chloride (C-Cl)":      mk([]string{"C", "Cl"}, [][2]int{{0, 1}}),
		"fluoride (C-F)":       mk([]string{"C", "F"}, [][2]int{{0, 1}}),
		"ether-like (C-O-C)":   mk([]string{"C", "O", "C"}, [][2]int{{0, 1}, {1, 2}}),
		"carbon ring (C6)": mk([]string{"C", "C", "C", "C", "C", "C"},
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}),
	}
}

// FunctionalGroups counts occurrences of each known functional-group motif
// in the molecule (up to 64 matches per motif to bound work).
func FunctionalGroups(g *graph.Graph) map[string]int {
	out := make(map[string]int)
	for name, pattern := range functionalGroupPatterns() {
		ms := graph.FindSubgraphIsomorphisms(pattern, g, graph.IsoOptions{MaxMatches: 64})
		if len(ms) > 0 {
			out[name] = len(ms)
		}
	}
	return out
}
