package apis

import (
	"fmt"
	"strings"

	"chatgraph/internal/graph"
	"chatgraph/internal/kg"
)

// registerClean adds the knowledge-graph cleaning and graph-edit APIs of
// scenario 3 (Fig. 6). Detection APIs produce an issue list; the edit APIs
// apply it (after the session obtains user confirmation).
func registerClean(r *Registry, env *Env) {
	r.mustRegister(API{
		Name:        "kg.detect_incorrect",
		Description: "Detect incorrect edges in a knowledge graph, such as type violations and duplicate triples, to clean the noise.",
		Category:    "clean",
		Kinds:       []graph.Kind{graph.KindKnowledge},
		Fn: func(in Input) (Output, error) {
			issues := env.Detector.DetectIncorrect(in.Graph)
			return issueOutput("incorrect edge(s)", issues), nil
		},
	})
	r.mustRegister(API{
		Name:        "kg.detect_missing",
		Description: "Infer missing edges in a knowledge graph using logical rules like symmetry and transitivity to complete and clean it.",
		Category:    "clean",
		Kinds:       []graph.Kind{graph.KindKnowledge},
		Fn: func(in Input) (Output, error) {
			issues := env.Detector.DetectMissing(in.Graph)
			return issueOutput("missing edge(s)", issues), nil
		},
	})
	r.mustRegister(API{
		Name:        "kg.detect_all",
		Description: "Clean the knowledge graph: run all quality checks and report every incorrect and missing edge to fix.",
		Category:    "clean",
		Kinds:       []graph.Kind{graph.KindKnowledge},
		Fn: func(in Input) (Output, error) {
			issues := env.Detector.Detect(in.Graph)
			return issueOutput("issue(s)", issues), nil
		},
	})
	r.mustRegister(API{
		Name:        "kg.mine_rules",
		Description: "Mine logical rules like symmetry and transitivity from the knowledge graph with support and confidence scores.",
		Category:    "clean",
		Kinds:       []graph.Kind{graph.KindKnowledge},
		Params: []Param{
			{Name: "min_support", Description: "minimum body instances", Kind: "int", Default: "3"},
			{Name: "min_confidence", Description: "minimum confidence", Kind: "float", Default: "0.6"},
		},
		Fn: func(in Input) (Output, error) {
			minConf := 0.6
			if v := in.Arg("min_confidence", ""); v != "" {
				fmt.Sscanf(v, "%g", &minConf) //nolint:errcheck // validated as float already
			}
			mined := kg.MineRules(in.Graph, kg.MineConfig{
				MinSupport:    in.IntArg("min_support", 3),
				MinConfidence: minConf,
			})
			if len(mined) == 0 {
				return Output{Text: "No rules met the support and confidence thresholds.", Data: mined}, nil
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Mined %d rule(s):\n", len(mined))
			for i, m := range mined {
				if i >= 8 {
					fmt.Fprintf(&b, "... and %d more\n", len(mined)-8)
					break
				}
				fmt.Fprintf(&b, "  %d. %s\n", i+1, m)
			}
			return Output{Text: strings.TrimRight(b.String(), "\n"), Data: mined}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.apply_edits",
		Description: "Apply the confirmed cleaning edits, removing incorrect edges and adding missing edges to repair the graph.",
		Category:    "clean",
		Mutates:     true,
		Fn: func(in Input) (Output, error) {
			issues, ok := in.Prev.Data.([]kg.Issue)
			if !ok {
				return Output{}, fmt.Errorf("graph.apply_edits: previous step produced %T, want []kg.Issue from a detection API", in.Prev.Data)
			}
			applied := kg.Apply(in.Graph, issues)
			return Output{
				Text: fmt.Sprintf("Applied %d of %d edit(s); the graph now has %d edges.", applied, len(issues), in.Graph.NumEdges()),
				Data: applied,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.add_edge",
		Description: "Add a single edge with an optional label between two nodes of the graph.",
		Category:    "clean",
		Mutates:     true,
		Params: []Param{
			{Name: "from", Description: "source node id", Required: true, Kind: "int"},
			{Name: "to", Description: "target node id", Required: true, Kind: "int"},
			{Name: "label", Description: "edge label"},
		},
		Fn: func(in Input) (Output, error) {
			from := graph.NodeID(in.IntArg("from", -1))
			to := graph.NodeID(in.IntArg("to", -1))
			if err := in.Graph.AddEdgeLabeled(from, to, in.Arg("label", ""), 1); err != nil {
				return Output{}, err
			}
			return Output{Text: fmt.Sprintf("Added edge %d -> %d.", from, to), Data: true}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.remove_edge",
		Description: "Remove a single edge between two nodes of the graph.",
		Category:    "clean",
		Mutates:     true,
		Params: []Param{
			{Name: "from", Description: "source node id", Required: true, Kind: "int"},
			{Name: "to", Description: "target node id", Required: true, Kind: "int"},
		},
		Fn: func(in Input) (Output, error) {
			from := graph.NodeID(in.IntArg("from", -1))
			to := graph.NodeID(in.IntArg("to", -1))
			if !in.Graph.RemoveEdge(from, to) {
				return Output{}, fmt.Errorf("graph.remove_edge: no edge %d -> %d", from, to)
			}
			return Output{Text: fmt.Sprintf("Removed edge %d -> %d.", from, to), Data: true}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.relabel_node",
		Description: "Change the label of one node in the graph to fix a mislabel.",
		Category:    "clean",
		Mutates:     true,
		Params: []Param{
			{Name: "node", Description: "node id", Required: true, Kind: "int"},
			{Name: "label", Description: "new label", Required: true},
		},
		Fn: func(in Input) (Output, error) {
			id := in.IntArg("node", -1)
			if id < 0 || id >= in.Graph.NumNodes() {
				return Output{}, fmt.Errorf("graph.relabel_node: node %d out of range", id)
			}
			old := in.Graph.Node(graph.NodeID(id)).Label
			in.Graph.SetNodeLabel(graph.NodeID(id), in.Arg("label", ""))
			return Output{Text: fmt.Sprintf("Relabeled node %d from %q to %q.", id, old, in.Arg("label", "")), Data: true}, nil
		},
	})
}

func issueOutput(noun string, issues []kg.Issue) Output {
	if len(issues) == 0 {
		return Output{Text: fmt.Sprintf("No %s found; the graph looks clean.", noun), Data: issues}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Found %d %s:\n", len(issues), noun)
	for i, is := range issues {
		if i >= 10 {
			fmt.Fprintf(&b, "... and %d more\n", len(issues)-10)
			break
		}
		fmt.Fprintf(&b, "  %d. %s\n", i+1, is)
	}
	return Output{Text: strings.TrimRight(b.String(), "\n"), Data: issues}
}
