package apis

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"chatgraph/internal/graph"
	"chatgraph/internal/metrics"
)

// Process-wide invocation-cache instruments, aggregated across every
// InvokeCache instance (the per-instance Counters/Evictions accessors stay
// for tests and in-process introspection).
var (
	mCacheHits = metrics.Default().Counter("chatgraph_invoke_cache_hits_total",
		"Memoized API invocations served from the cache.", nil)
	mCacheMisses = metrics.Default().Counter("chatgraph_invoke_cache_misses_total",
		"Memoizable API invocations that had to run.", nil)
	mCacheEvictions = metrics.Default().Counter("chatgraph_invoke_cache_evictions_total",
		"Entries evicted for capacity.", nil)
	mCacheInvalidations = metrics.Default().Counter("chatgraph_invoke_cache_invalidations_total",
		"Entries dropped because their graph version went stale.", nil)
)

// cacheKey identifies one memoizable invocation: the graph instance, its
// mutation version at invoke time, the API, and the canonicalized arguments.
// The graph pointer is part of the key (versions are per-graph counters, so
// two different graphs can share a version number); while an entry lives in
// the cache it keeps its graph reachable, which also rules out a recycled
// address colliding with a stale entry.
type cacheKey struct {
	graph   *graph.Graph
	version uint64
	api     string
	args    string
}

// InvokeCache is a bounded, concurrency-safe LRU over API invocation
// outputs. The executor consults it through Registry.Invoke: a repeated
// memoizable step on an unmutated graph returns the stored Output without
// re-running the API. Cached Outputs are shared — callers must treat the
// Data payload as read-only (every built-in API does).
type InvokeCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // most-recent first; values are *cacheEntry
	entries  map[cacheKey]*list.Element
	hits     uint64
	misses   uint64
	// evictions counts capacity evictions; invalidations counts entries
	// dropped because a newer version of their graph was cached.
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key cacheKey
	out Output
}

// DefaultInvokeCacheSize bounds the Env cache Default installs.
const DefaultInvokeCacheSize = 256

// NewInvokeCache returns an LRU holding at most capacity entries
// (capacity <= 0 gets DefaultInvokeCacheSize).
func NewInvokeCache(capacity int) *InvokeCache {
	if capacity <= 0 {
		capacity = DefaultInvokeCacheSize
	}
	return &InvokeCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *InvokeCache) get(k cacheKey) (Output, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		mCacheMisses.Inc()
		return Output{}, false
	}
	c.hits++
	mCacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

func (c *InvokeCache) put(k cacheKey, out Output) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	// A new version of a graph means every entry for its older versions is
	// dead — drop them now instead of letting them pin the graph until LRU
	// eviction. O(capacity) walk, paid once per cold (recomputing) call.
	var stale []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.key.graph == k.graph && e.key.version != k.version {
			stale = append(stale, el)
		}
	}
	for _, el := range stale {
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
		c.invalidations++
		mCacheInvalidations.Inc()
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, out: out})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		mCacheEvictions.Inc()
	}
}

// Len reports the number of live entries.
func (c *InvokeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *InvokeCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the lifetime capacity-eviction and stale-version
// invalidation counts.
func (c *InvokeCache) Evictions() (evictions, invalidations uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions, c.invalidations
}

// canonicalArgs renders args as a deterministic key-sorted list, so two
// invocations with the same argument map hash to the same cache key. Every
// token is length-prefixed: separator bytes appearing inside keys or values
// (chain args arrive from JSON, which permits any byte) can never make two
// different maps collide.
func canonicalArgs(args map[string]string) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(len(args[k])))
		b.WriteByte(':')
		b.WriteString(args[k])
		b.WriteByte(';')
	}
	return b.String()
}
