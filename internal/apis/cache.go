package apis

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"chatgraph/internal/graph"
	"chatgraph/internal/metrics"
)

// Process-wide invocation-cache instruments, aggregated across every
// InvokeCache instance (the per-instance Counters/Evictions accessors stay
// for tests and in-process introspection).
var (
	mCacheHits = metrics.Default().Counter("chatgraph_invoke_cache_hits_total",
		"Memoized API invocations served from the cache.", nil)
	mCacheMisses = metrics.Default().Counter("chatgraph_invoke_cache_misses_total",
		"Memoizable API invocations that had to run.", nil)
	mCacheEvictions = metrics.Default().Counter("chatgraph_invoke_cache_evictions_total",
		"Entries evicted for capacity.", nil)
)

// cacheKey identifies one memoizable invocation by graph *content*, not
// graph pointer: the canonical content hash, the index-order exact hash,
// the graph's mutation version at invoke time, the API, and the
// canonicalized arguments. Content keying is what lets two sessions that
// upload the same graph share one entry pool, and it removes the
// pointer-keying hazard entirely: the cache holds no graph references, so
// a freed graph's recycled address can never alias a stale entry — an old
// entry is reachable only by presenting the same content again, in which
// case it is not stale. The exact hash is the equality witness: canonical
// hashing erases ordering (by design), but node IDs are observable through
// args and outputs, so WL-equivalent or permuted graphs must not share
// entries. The version rides along as a belt-and-suspenders discriminator
// (identical parses of identical JSON produce identical versions, so
// cross-upload sharing is unaffected).
type cacheKey struct {
	hash    graph.ContentHash
	exact   graph.ExactHash
	version uint64
	api     string
	args    string
}

// InvokeCache is a bounded, concurrency-safe LRU over API invocation
// outputs. The executor consults it through Registry.Invoke: a repeated
// memoizable step on an unmutated graph returns the stored Output without
// re-running the API. Cached Outputs are shared — callers must treat the
// Data payload as read-only (every built-in API does).
type InvokeCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // most-recent first; values are *cacheEntry
	entries  map[cacheKey]*list.Element
	hits     uint64
	misses   uint64
	// evictions counts capacity evictions. Content-keyed entries are never
	// "stale" (the hash is the content), so capacity is the only reason an
	// entry leaves.
	evictions uint64
}

type cacheEntry struct {
	key cacheKey
	out Output
}

// DefaultInvokeCacheSize bounds the Env cache Default installs.
const DefaultInvokeCacheSize = 256

// NewInvokeCache returns an LRU holding at most capacity entries
// (capacity <= 0 gets DefaultInvokeCacheSize).
func NewInvokeCache(capacity int) *InvokeCache {
	if capacity <= 0 {
		capacity = DefaultInvokeCacheSize
	}
	return &InvokeCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *InvokeCache) get(k cacheKey) (Output, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		mCacheMisses.Inc()
		return Output{}, false
	}
	c.hits++
	mCacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

func (c *InvokeCache) put(k cacheKey, out Output) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	// No stale-version sweep: the content hash in the key means an entry
	// for an older version of some graph is still a correct answer for any
	// graph presenting that older content; unreferenced old content simply
	// ages out of the LRU.
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, out: out})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		mCacheEvictions.Inc()
	}
}

// Len reports the number of live entries.
func (c *InvokeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *InvokeCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the lifetime capacity-eviction count.
func (c *InvokeCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// canonicalArgs renders args as a deterministic key-sorted list, so two
// invocations with the same argument map hash to the same cache key. Every
// token is length-prefixed: separator bytes appearing inside keys or values
// (chain args arrive from JSON, which permits any byte) can never make two
// different maps collide.
func canonicalArgs(args map[string]string) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(len(args[k])))
		b.WriteByte(':')
		b.WriteString(args[k])
		b.WriteByte(';')
	}
	return b.String()
}
