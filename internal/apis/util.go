package apis

import (
	"fmt"
	"strings"

	"chatgraph/internal/graph"
)

// registerUtil adds the cross-cutting APIs every scenario uses: graph type
// classification, summary statistics, and report composition.
func registerUtil(r *Registry, _ *Env) {
	r.mustRegister(API{
		Name:        "graph.classify",
		Memoizable:  true,
		Description: "Predict whether the uploaded graph is a social network, a chemical molecule, or a knowledge graph.",
		Category:    "util",
		Fn: func(in Input) (Output, error) {
			kind := graph.Classify(in.Graph)
			return Output{
				Text: fmt.Sprintf("The graph looks like a %s graph.", kind),
				Data: kind,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.stats",
		Memoizable:  true,
		Description: "Summarize the basic statistics of the graph: nodes, edges, density, degrees, components, and clustering.",
		Category:    "util",
		Fn: func(in Input) (Output, error) {
			s := graph.ComputeStats(in.Graph)
			return Output{Text: strings.TrimRight(s.Describe(), "\n"), Data: s}, nil
		},
	})
	r.mustRegister(API{
		Name:        "report.compose",
		Description: "Write a brief natural language report about the graph combining the results of the previous analysis steps.",
		Category:    "util",
		Params: []Param{
			{Name: "style", Description: "report style", Kind: "enum", Enum: []string{"brief", "detailed"}, Default: "brief"},
		},
		Fn: func(in Input) (Output, error) {
			kind := graph.Classify(in.Graph)
			s := graph.ComputeStats(in.Graph)
			var b strings.Builder
			name := in.Graph.Name
			if name == "" {
				name = "G"
			}
			fmt.Fprintf(&b, "Report for %s (%s graph):\n", name, kind)
			b.WriteString(s.Describe())
			if in.Prev.Text != "" {
				b.WriteString("Analysis findings:\n")
				for _, line := range strings.Split(in.Prev.Text, "\n") {
					fmt.Fprintf(&b, "  %s\n", line)
				}
			}
			if in.Arg("style", "brief") == "detailed" {
				fmt.Fprintf(&b, "Degree extremes: min %d, max %d; diameter ≈ %d.\n",
					s.MinDegree, s.MaxDegree, s.ApproxDiameter)
			}
			return Output{Text: strings.TrimRight(b.String(), "\n"), Data: s}, nil
		},
	})
	r.mustRegister(API{
		Name:        "graph.sample_neighborhood",
		Memoizable:  true,
		Description: "Extract the neighborhood subgraph within a number of hops around a node.",
		Category:    "util",
		Params: []Param{
			{Name: "node", Description: "center node id", Required: true, Kind: "int"},
			{Name: "hops", Description: "radius in hops", Kind: "int", Default: "2"},
		},
		Fn: func(in Input) (Output, error) {
			id := in.IntArg("node", -1)
			if id < 0 || id >= in.Graph.NumNodes() {
				return Output{}, fmt.Errorf("graph.sample_neighborhood: node %d out of range", id)
			}
			nodes := in.Graph.KHopSubgraphNodes(graph.NodeID(id), in.IntArg("hops", 2))
			return Output{
				Text: fmt.Sprintf("The %d-hop neighborhood of node %d contains %d node(s).", in.IntArg("hops", 2), id, len(nodes)),
				Data: nodes,
			}, nil
		},
	})
}
