package apis

import (
	"fmt"
	"strings"

	"chatgraph/internal/graph"
	"chatgraph/internal/moldb"
)

// registerCompare adds the graph-comparison APIs of scenario 2 (Fig. 5):
// similarity search against the molecule database and pairwise similarity.
func registerCompare(r *Registry, env *Env) {
	r.mustRegister(API{
		Name:        "similarity.search",
		Description: "Search the molecule database for the molecules most similar to the given graph and return the top matches.",
		Category:    "compare",
		Params: []Param{
			{Name: "top", Description: "how many matches to return", Kind: "int", Default: "2"},
		},
		Fn: func(in Input) (Output, error) {
			if env.MolDB.Len() == 0 {
				return Output{Text: "The molecule database is empty; nothing to compare against.", Data: []moldb.Match(nil)}, nil
			}
			k := in.IntArg("top", 2)
			matches := env.MolDB.Search(in.Graph, k)
			parts := make([]string, len(matches))
			for i, m := range matches {
				e, err := env.MolDB.Get(m.ID)
				if err != nil {
					return Output{}, fmt.Errorf("similarity.search: %w", err)
				}
				parts[i] = fmt.Sprintf("%s (similarity %.3f)", moldb.Describe(e), m.Similarity)
			}
			return Output{
				Text: fmt.Sprintf("Top %d similar molecules: %s.", len(matches), strings.Join(parts, "; ")),
				Data: matches,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "similarity.kernel",
		Description: "Compute the Weisfeiler-Lehman structural similarity between the uploaded graph and a stored molecule.",
		Category:    "compare",
		Params: []Param{
			{Name: "id", Description: "stored molecule id", Required: true, Kind: "int"},
		},
		Fn: func(in Input) (Output, error) {
			e, err := env.MolDB.Get(in.IntArg("id", -1))
			if err != nil {
				return Output{}, err
			}
			sim := env.MolDB.Similarity(in.Graph, e.Graph)
			return Output{
				Text: fmt.Sprintf("Similarity between the uploaded graph and %s: %.3f.", e.Name, sim),
				Data: sim,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "similarity.store",
		Description: "Store the uploaded molecule graph in the molecule database for future comparisons.",
		Category:    "compare",
		Params: []Param{
			{Name: "name", Description: "name to store the molecule under", Default: "uploaded"},
		},
		Fn: func(in Input) (Output, error) {
			name := in.Arg("name", "uploaded")
			id := env.MolDB.Add(name, in.Graph.Clone())
			return Output{
				Text: fmt.Sprintf("Stored the molecule as %q with id %d.", name, id),
				Data: id,
			}, nil
		},
	})
	r.mustRegister(API{
		Name:        "compare.stats",
		Description: "Compare the structural statistics of the uploaded graph against a stored molecule side by side.",
		Category:    "compare",
		Params: []Param{
			{Name: "id", Description: "stored molecule id", Required: true, Kind: "int"},
		},
		Fn: func(in Input) (Output, error) {
			e, err := env.MolDB.Get(in.IntArg("id", -1))
			if err != nil {
				return Output{}, err
			}
			a := graph.ComputeStats(in.Graph)
			b := graph.ComputeStats(e.Graph)
			return Output{
				Text: fmt.Sprintf("Uploaded: %d nodes / %d edges / %d triangles. %s: %d nodes / %d edges / %d triangles.",
					a.Nodes, a.Edges, a.Triangles, e.Name, b.Nodes, b.Edges, b.Triangles),
				Data: [2]graph.Stats{a, b},
			}, nil
		},
	})
}
