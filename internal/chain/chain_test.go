package chain

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mk(apis ...string) Chain {
	c := make(Chain, len(apis))
	for i, a := range apis {
		c[i] = Step{API: a}
	}
	return c
}

func TestStepString(t *testing.T) {
	s := NewStep("graph.community", "method", "label_prop", "k", "3")
	if got := s.String(); got != "graph.community(k=3,method=label_prop)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Step{API: "x"}).String(); got != "x" {
		t.Fatalf("no-arg String = %q", got)
	}
}

func TestNewStepPanicsOnOddKV(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd kv")
		}
	}()
	NewStep("x", "only-key")
}

func TestStepEqual(t *testing.T) {
	a := NewStep("x", "k", "1")
	if !a.Equal(NewStep("x", "k", "1")) {
		t.Fatal("identical steps unequal")
	}
	if a.Equal(NewStep("x", "k", "2")) || a.Equal(NewStep("y", "k", "1")) || a.Equal(NewStep("x")) {
		t.Fatal("different steps equal")
	}
}

func TestChainStringParseRoundTrip(t *testing.T) {
	c := Chain{
		NewStep("graph.classify"),
		NewStep("community.detect", "method", "label_prop"),
		NewStep("report.compose", "style", "brief"),
	}
	text := c.String()
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if !got.Equal(c) {
		t.Fatalf("round trip: %s != %s", got, c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a -> -> b",
		"a(k=", // unterminated
		"(k=v)",
		"a(kv)",
		"a(=v)",
		"a)b",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
	if c, err := Parse("  "); err != nil || c != nil {
		t.Fatalf("Parse(blank) = %v, %v", c, err)
	}
	if c, err := Parse("solo()"); err != nil || len(c) != 1 || c[0].Args != nil {
		t.Fatalf("Parse(solo()) = %v, %v", c, err)
	}
}

func TestCloneIndependent(t *testing.T) {
	c := Chain{NewStep("a", "k", "v")}
	d := c.Clone()
	d[0].Args["k"] = "changed"
	d[0].API = "b"
	if c[0].API != "a" || c[0].Args["k"] != "v" {
		t.Fatal("Clone shares storage")
	}
}

func TestAPIs(t *testing.T) {
	c := mk("a", "b", "c")
	got := c.APIs()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("APIs = %v", got)
	}
}

func TestEditDistanceBasics(t *testing.T) {
	a := mk("x", "y", "z")
	if d := EditDistance(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	if d := EditDistance(a, mk("x", "y")); d != 1 {
		t.Fatalf("delete distance = %v", d)
	}
	if d := EditDistance(a, mk("x", "q", "z")); d != 1 {
		t.Fatalf("substitute distance = %v", d)
	}
	if d := EditDistance(nil, a); d != 3 {
		t.Fatalf("insert-all distance = %v", d)
	}
}

func TestEditDistanceArgGrading(t *testing.T) {
	a := Chain{NewStep("x", "k", "1")}
	b := Chain{NewStep("x", "k", "2")}
	if d := EditDistance(a, b); d != argCost {
		t.Fatalf("same-API different-args distance = %v, want %v", d, argCost)
	}
}

func TestOptimalMatchingAlignsEqualAPIs(t *testing.T) {
	a := mk("u", "v", "w")
	b := mk("w", "u", "v") // permuted
	m := OptimalMatching(a, b)
	want := []int{1, 2, 0}
	for i, j := range m.Pairs {
		if j != want[i] {
			t.Fatalf("Pairs = %v, want %v", m.Pairs, want)
		}
	}
	if m.Cost != 0 {
		t.Fatalf("Cost = %v, want 0", m.Cost)
	}
}

func TestOptimalMatchingUnmatched(t *testing.T) {
	a := mk("u", "qq")
	b := mk("u")
	m := OptimalMatching(a, b)
	if m.Pairs[0] != 0 {
		t.Fatalf("Pairs = %v", m.Pairs)
	}
	if m.Pairs[1] != -1 {
		t.Fatalf("extra step should be unmatched, Pairs = %v", m.Pairs)
	}
}

func TestOptimalMatchingEmpty(t *testing.T) {
	m := OptimalMatching(nil, nil)
	if len(m.Pairs) != 0 || m.Cost != 0 {
		t.Fatalf("empty matching = %+v", m)
	}
}

func TestLossZeroForIdentical(t *testing.T) {
	c := mk("a", "b")
	if l := Loss(c, c, 0.5); l != 0 {
		t.Fatalf("Loss(self) = %v", l)
	}
}

func TestLossPenalizesUnmatched(t *testing.T) {
	c := mk("a", "b", "c")
	truth := mk("a", "b")
	// X = 1 (one delete), Y = 1 (node c unmatched), α = 0.5 → 1.5
	if l := Loss(c, truth, 0.5); math.Abs(l-1.5) > 1e-9 {
		t.Fatalf("Loss = %v, want 1.5", l)
	}
}

func TestLossAlphaScales(t *testing.T) {
	c := mk("a", "zzz")
	truth := mk("a")
	l0 := Loss(c, truth, 0)
	l1 := Loss(c, truth, 1)
	if l1 <= l0 {
		t.Fatalf("alpha had no effect: %v vs %v", l0, l1)
	}
}

func TestMinLossPicksClosestTruth(t *testing.T) {
	c := mk("a", "b")
	truths := []Chain{mk("x", "y", "z"), mk("a", "b"), mk("a")}
	l, idx := MinLoss(c, truths, 0.5)
	if l != 0 || idx != 1 {
		t.Fatalf("MinLoss = %v, %d", l, idx)
	}
	l, idx = MinLoss(c, nil, 0.5)
	if !math.IsInf(l, 1) || idx != -1 {
		t.Fatalf("empty MinLoss = %v, %d", l, idx)
	}
}

type fakeValidator struct{ bad string }

func (f fakeValidator) ValidateStep(s Step) error {
	if s.API == f.bad {
		return errBad
	}
	return nil
}

var errBad = &validationError{}

type validationError struct{}

func (*validationError) Error() string { return "unknown api" }

func TestValidate(t *testing.T) {
	c := mk("good", "bad", "good")
	err := Validate(c, fakeValidator{bad: "bad"})
	if err == nil || !strings.Contains(err.Error(), "step 2") {
		t.Fatalf("Validate = %v", err)
	}
	if err := Validate(mk("good"), fakeValidator{bad: "bad"}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

// Property: edit distance is a metric on chains (symmetry + triangle
// inequality + identity) for API-only steps.
func TestQuickEditDistanceMetric(t *testing.T) {
	gen := func(raw []uint8) Chain {
		apis := []string{"a", "b", "c", "d"}
		c := make(Chain, 0, len(raw)%6)
		for i := 0; i < len(raw) && i < 6; i++ {
			c = append(c, Step{API: apis[int(raw[i])%len(apis)]})
		}
		return c
	}
	f := func(ra, rb, rc []uint8) bool {
		a, b, c := gen(ra), gen(rb), gen(rc)
		dab, dba := EditDistance(a, b), EditDistance(b, a)
		if dab != dba {
			return false
		}
		if EditDistance(a, a) != 0 {
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hungarian matching is one-to-one (no column reused).
func TestQuickMatchingOneToOne(t *testing.T) {
	gen := func(raw []uint8, n int) Chain {
		apis := []string{"a", "b", "c", "d", "e"}
		c := make(Chain, 0, n)
		for i := 0; i < len(raw) && i < n; i++ {
			c = append(c, Step{API: apis[int(raw[i])%len(apis)]})
		}
		return c
	}
	f := func(ra, rb []uint8) bool {
		a, b := gen(ra, 5), gen(rb, 5)
		m := OptimalMatching(a, b)
		seen := make(map[int]bool)
		for _, j := range m.Pairs {
			if j < 0 {
				continue
			}
			if j >= len(b) || seen[j] {
				return false
			}
			seen[j] = true
		}
		return len(m.Pairs) == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Loss is non-negative and zero only adds up for equal chains.
func TestQuickLossNonNegative(t *testing.T) {
	gen := func(raw []uint8) Chain {
		apis := []string{"a", "b", "c"}
		c := make(Chain, 0, 4)
		for i := 0; i < len(raw) && i < 4; i++ {
			c = append(c, Step{API: apis[int(raw[i])%len(apis)]})
		}
		return c
	}
	f := func(ra, rb []uint8) bool {
		a, b := gen(ra), gen(rb)
		l := Loss(a, b, 0.5)
		if l < 0 {
			return false
		}
		if a.Equal(b) && l != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
