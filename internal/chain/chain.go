// Package chain models API chains — the sequences of graph-analysis API
// invocations ChatGraph generates from user prompts — together with the two
// training signals of the paper's §II-C: the graph edit distance between a
// generated chain and a ground truth, and the node-matching-based loss of
// Definition 1 built on an optimal one-to-one matching (computed here with
// the Hungarian algorithm).
package chain

import (
	"fmt"
	"sort"
	"strings"
)

// Step is one API invocation in a chain.
type Step struct {
	// API is the registry name of the invoked API, e.g. "community.detect".
	API string
	// Args are the invocation arguments (literal strings; the executor
	// interprets them against the API signature).
	Args map[string]string
}

// NewStep builds a Step from alternating key, value argument pairs; it
// panics on an odd number of kv elements (a programming error).
func NewStep(api string, kv ...string) Step {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("chain: NewStep(%s) called with odd kv list", api))
	}
	s := Step{API: api}
	if len(kv) > 0 {
		s.Args = make(map[string]string, len(kv)/2)
		for i := 0; i < len(kv); i += 2 {
			s.Args[kv[i]] = kv[i+1]
		}
	}
	return s
}

// String renders the step as "api(k=v,k2=v2)" with sorted keys.
func (s Step) String() string {
	if len(s.Args) == 0 {
		return s.API
	}
	keys := make([]string, 0, len(s.Args))
	for k := range s.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.Args[k]
	}
	return s.API + "(" + strings.Join(parts, ",") + ")"
}

// Equal reports whether two steps call the same API with the same args.
func (s Step) Equal(o Step) bool {
	if s.API != o.API || len(s.Args) != len(o.Args) {
		return false
	}
	for k, v := range s.Args {
		if o.Args[k] != v {
			return false
		}
	}
	return true
}

// Chain is an ordered sequence of API invocations. The output of step i is
// piped into step i+1 by the executor, which is the linear pipeline form the
// paper generates and monitors.
type Chain []Step

// String renders the chain as "a -> b(k=v) -> c".
func (c Chain) String() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.String()
	}
	return strings.Join(parts, " -> ")
}

// APIs returns the API names in order.
func (c Chain) APIs() []string {
	out := make([]string, len(c))
	for i, s := range c {
		out[i] = s.API
	}
	return out
}

// Equal reports element-wise equality.
func (c Chain) Equal(o Chain) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if !c[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the chain.
func (c Chain) Clone() Chain {
	out := make(Chain, len(c))
	for i, s := range c {
		ns := Step{API: s.API}
		if s.Args != nil {
			ns.Args = make(map[string]string, len(s.Args))
			for k, v := range s.Args {
				ns.Args[k] = v
			}
		}
		out[i] = ns
	}
	return out
}

// Parse inverts String: "a -> b(k=v,k2=v2)" → Chain. Whitespace around the
// arrow and arguments is tolerated; malformed steps return an error.
func Parse(text string) (Chain, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var c Chain
	for _, raw := range strings.Split(text, "->") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, fmt.Errorf("chain: empty step in %q", text)
		}
		step, err := parseStep(raw)
		if err != nil {
			return nil, err
		}
		c = append(c, step)
	}
	return c, nil
}

func parseStep(raw string) (Step, error) {
	open := strings.IndexByte(raw, '(')
	if open < 0 {
		if strings.ContainsAny(raw, ")=,") {
			return Step{}, fmt.Errorf("chain: malformed step %q", raw)
		}
		return Step{API: raw}, nil
	}
	if !strings.HasSuffix(raw, ")") {
		return Step{}, fmt.Errorf("chain: unterminated args in %q", raw)
	}
	name := strings.TrimSpace(raw[:open])
	if name == "" {
		return Step{}, fmt.Errorf("chain: step %q missing API name", raw)
	}
	body := raw[open+1 : len(raw)-1]
	s := Step{API: name}
	if strings.TrimSpace(body) == "" {
		return s, nil
	}
	s.Args = make(map[string]string)
	for _, pair := range strings.Split(body, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return Step{}, fmt.Errorf("chain: malformed argument %q in %q", pair, raw)
		}
		k := strings.TrimSpace(kv[0])
		if k == "" {
			return Step{}, fmt.Errorf("chain: empty argument key in %q", raw)
		}
		s.Args[k] = strings.TrimSpace(kv[1])
	}
	return s, nil
}

// Validator checks steps against an API registry. It is an interface so the
// chain package does not depend on internal/apis.
type Validator interface {
	// ValidateStep returns an error when the named API does not exist or
	// the arguments do not fit its signature.
	ValidateStep(s Step) error
}

// Validate checks every step of c against v and returns the first error,
// annotated with the step position.
func Validate(c Chain, v Validator) error {
	for i, s := range c {
		if err := v.ValidateStep(s); err != nil {
			return fmt.Errorf("chain: step %d (%s): %w", i+1, s.API, err)
		}
	}
	return nil
}
