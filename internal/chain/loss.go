package chain

import (
	"math"
)

// This file implements the training signals of the paper's §II-C.
//
// The graph edit distance X between two chains is the classic sequence edit
// distance with a graded substitution cost (same API + same args = 0, same
// API = argCost, different API = 1) and unit insert/delete cost — chains are
// linear graphs, so sequence edit distance IS their graph edit distance.
//
// The node-matching-based loss of Definition 1 is min_M X + αY where M is a
// one-to-one node matching between the chains and Y penalizes unmatched
// nodes: Y = Σ_{u∈C}(1−Σ_k M_{u,k})² + Σ_{v∈C′}(1−Σ_i M_{i,v})². The
// optimal matching is computed with the Hungarian algorithm over the
// pairwise substitution-cost matrix.

// argCost is the substitution cost between two steps that call the same API
// with different arguments — cheaper than a full API mismatch so the
// matching prefers aligning same-API steps.
const argCost = 0.25

// stepCost is the substitution cost used by both the edit distance and the
// matching.
func stepCost(a, b Step) float64 {
	if a.API != b.API {
		return 1
	}
	if a.Equal(b) {
		return 0
	}
	return argCost
}

// EditDistance returns the graph edit distance between two chains: the
// minimum total cost of substitutions (stepCost), insertions, and deletions
// (cost 1 each) transforming a into b.
func EditDistance(a, b Chain) float64 {
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= n; i++ {
		cur[0] = float64(i)
		for j := 1; j <= m; j++ {
			sub := prev[j-1] + stepCost(a[i-1], b[j-1])
			ins := cur[j-1] + 1
			del := prev[j] + 1
			cur[j] = math.Min(sub, math.Min(ins, del))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Matching is a one-to-one assignment between the steps of two chains.
// Pairs[i] = j means step i of the first chain matches step j of the second;
// -1 means unmatched.
type Matching struct {
	Pairs []int
	// Cost is the total substitution cost over matched pairs.
	Cost float64
}

// OptimalMatching computes the minimum-cost one-to-one matching between the
// steps of a and b using the Hungarian algorithm on a square matrix padded
// with dummy rows/columns of cost 1 (the cost of leaving a node unmatched,
// equal to an insert/delete in the edit distance).
func OptimalMatching(a, b Chain) Matching {
	n, m := len(a), len(b)
	size := n
	if m > size {
		size = m
	}
	if size == 0 {
		return Matching{}
	}
	const unmatched = 1.0
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			switch {
			case i < n && j < m:
				cost[i][j] = stepCost(a[i], b[j])
			default:
				cost[i][j] = unmatched
			}
		}
	}
	assign := hungarian(cost)
	mt := Matching{Pairs: make([]int, n)}
	for i := 0; i < n; i++ {
		j := assign[i]
		if j < m {
			// Matching to a dummy is never better than a real pair of cost
			// < 1; but a real pair of cost 1 is equivalent to unmatched, so
			// treat full-cost pairs as unmatched for the regularizer.
			if cost[i][j] < unmatched {
				mt.Pairs[i] = j
				mt.Cost += cost[i][j]
				continue
			}
		}
		mt.Pairs[i] = -1
	}
	return mt
}

// Loss evaluates Definition 1 for the generated chain c against the ground
// truth truth: min_M X + αY with X the edit distance and Y the one-to-one
// regularizer under the optimal matching.
func Loss(c, truth Chain, alpha float64) float64 {
	x := EditDistance(c, truth)
	m := OptimalMatching(c, truth)
	matchedTruth := make([]bool, len(truth))
	unmatchedC := 0
	for _, j := range m.Pairs {
		if j >= 0 {
			matchedTruth[j] = true
		} else {
			unmatchedC++
		}
	}
	unmatchedT := 0
	for _, ok := range matchedTruth {
		if !ok {
			unmatchedT++
		}
	}
	// With a hard 0/1 matching the row/column sums are 0 or 1, so each
	// unmatched node contributes (1−0)² = 1.
	y := float64(unmatchedC + unmatchedT)
	return x + alpha*y
}

// MinLoss returns the smallest Loss of c against any of the ground-truth
// chains — the paper's "there may be several API chains that are equivalent"
// property — plus the index of the closest truth. An empty truth set yields
// (+Inf, -1).
func MinLoss(c Chain, truths []Chain, alpha float64) (float64, int) {
	best, bestIdx := math.Inf(1), -1
	for i, t := range truths {
		if l := Loss(c, t, alpha); l < best {
			best, bestIdx = l, i
		}
	}
	return best, bestIdx
}

// hungarian solves the square assignment problem, returning for each row the
// assigned column. This is the O(n³) potential-based formulation.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j (1-based)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}
