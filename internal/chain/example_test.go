package chain_test

import (
	"fmt"

	"chatgraph/internal/chain"
)

func ExampleParse() {
	c, err := chain.Parse("graph.classify -> community.detect(max_iters=20) -> report.compose")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(c), "steps")
	fmt.Println(c[1].API, c[1].Args["max_iters"])
	// Output:
	// 3 steps
	// community.detect 20
}

func ExampleLoss() {
	generated, _ := chain.Parse("graph.classify -> kg.detect_all")
	truth, _ := chain.Parse("graph.classify -> kg.detect_all -> graph.apply_edits")
	// One missing step: edit distance 1 plus one unmatched node × α=0.5.
	fmt.Printf("%.1f\n", chain.Loss(generated, truth, 0.5))
	// Output:
	// 1.5
}

func ExampleEditDistance() {
	a, _ := chain.Parse("x -> y -> z")
	b, _ := chain.Parse("x -> q -> z")
	fmt.Println(chain.EditDistance(a, b))
	// Output:
	// 1
}
