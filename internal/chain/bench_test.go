package chain

import (
	"math/rand"
	"testing"
)

func randomChain(rng *rand.Rand, n int) Chain {
	apis := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	c := make(Chain, n)
	for i := range c {
		c[i] = Step{API: apis[rng.Intn(len(apis))]}
	}
	return c
}

func BenchmarkEditDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randomChain(rng, 8), randomChain(rng, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(x, y)
	}
}

func BenchmarkOptimalMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randomChain(rng, 8), randomChain(rng, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimalMatching(x, y)
	}
}

func BenchmarkLoss(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := randomChain(rng, 6), randomChain(rng, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Loss(x, y, 0.5)
	}
}

func BenchmarkParse(b *testing.B) {
	text := "graph.classify -> community.detect(max_iters=20) -> report.compose(style=brief)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
